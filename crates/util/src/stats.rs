//! Summary statistics for experiment campaigns.
//!
//! The figure-reproduction binaries aggregate, for each memory bound, the
//! normalized makespans obtained over a whole DAG set (50 or 100 graphs in
//! the paper). This module provides the small amount of statistics needed:
//! streaming mean/variance (Welford), and percentile summaries.

/// Streaming mean / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Reconstructs an accumulator from its raw moments (the checkpoint
    /// restore path of the streaming campaigns). Returns `None` when the
    /// parts are inconsistent (`count > 0` with non-finite moments, negative
    /// `m2`, or an inverted min/max).
    pub fn from_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Option<Self> {
        if count == 0 {
            return Some(OnlineStats::new());
        }
        let finite = mean.is_finite() && m2.is_finite() && min.is_finite() && max.is_finite();
        if !finite || m2 < 0.0 || min > max {
            return None;
        }
        Some(OnlineStats {
            count,
            mean,
            m2,
            min,
            max,
        })
    }

    /// Number of observations pushed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Raw second central moment `Σ (x − mean)²` (the Welford `M2` term),
    /// exposed so accumulators can be checkpointed and restored bit-exactly.
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Sample mean (0 if no observations).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-∞` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Half-width of an approximate 95% confidence interval on the mean
    /// (normal approximation; good enough for the 50–100 sample campaigns).
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A percentile summary of a finite sample.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub p25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Computes a summary of the given sample. Returns `None` for an empty
    /// sample.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = values.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mut acc = OnlineStats::new();
        for &v in values {
            acc.push(v);
        }
        Some(Summary {
            count: values.len(),
            mean: acc.mean(),
            std_dev: acc.std_dev(),
            min: sorted[0],
            p25: percentile(&sorted, 0.25),
            median: percentile(&sorted, 0.5),
            p75: percentile(&sorted, 0.75),
            max: *sorted.last().unwrap(),
        })
    }
}

/// Linear-interpolation percentile of an already-sorted sample.
///
/// `q` must be in `[0, 1]`.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!(
        (0.0..=1.0).contains(&q),
        "percentile fraction out of range: {q}"
    );
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Geometric mean of a sample of positive values (0 if empty).
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::float::approx_eq;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!(approx_eq(s.mean(), 5.0));
        assert!(approx_eq(s.variance(), 32.0 / 7.0));
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_empty_and_single() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s1 = OnlineStats::new();
        s1.push(3.0);
        assert_eq!(s1.mean(), 3.0);
        assert_eq!(s1.variance(), 0.0);
        assert_eq!(s1.ci95_half_width(), 0.0);
    }

    #[test]
    fn online_stats_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!(approx_eq(a.mean(), whole.mean()));
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(2.0);
        let before_mean = a.mean();
        a.merge(&OnlineStats::new());
        assert!(approx_eq(a.mean(), before_mean));

        let mut empty = OnlineStats::new();
        let mut b = OnlineStats::new();
        b.push(5.0);
        empty.merge(&b);
        assert!(approx_eq(empty.mean(), 5.0));
    }

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!(approx_eq(s.mean, 3.0));
        assert!(approx_eq(s.median, 3.0));
        assert!(approx_eq(s.min, 1.0));
        assert!(approx_eq(s.max, 5.0));
        assert!(approx_eq(s.p25, 2.0));
        assert!(approx_eq(s.p75, 4.0));
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert!(approx_eq(percentile(&sorted, 0.0), 10.0));
        assert!(approx_eq(percentile(&sorted, 1.0), 40.0));
        assert!(approx_eq(percentile(&sorted, 0.5), 25.0));
    }

    #[test]
    fn geometric_mean_basic() {
        assert!(approx_eq(geometric_mean(&[1.0, 4.0]), 2.0));
        assert!(approx_eq(geometric_mean(&[2.0, 2.0, 2.0]), 2.0));
        assert_eq!(geometric_mean(&[]), 0.0);
    }
}
