//! Tolerant floating-point comparisons and a total-order wrapper.
//!
//! Scheduling times in this workspace are `f64` values built from sums and
//! maxima of task durations. Accumulated rounding error is tiny but real, so
//! every comparison that decides feasibility (memory fits, task finished
//! before another started, ...) goes through the helpers in this module with
//! a single shared tolerance.

/// Absolute tolerance used by all feasibility comparisons in the workspace.
///
/// Task durations and file sizes in the paper's experiments are integers in
/// `[1, 100]` and DAGs have at most a few thousand nodes, so absolute errors
/// stay many orders of magnitude below this threshold.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal up to [`EPSILON`] (absolute and
/// relative).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= EPSILON {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= scale * EPSILON
}

/// Returns `true` if `a >= b` up to [`EPSILON`].
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - EPSILON || approx_eq(a, b)
}

/// Returns `true` if `a <= b` up to [`EPSILON`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPSILON || approx_eq(a, b)
}

/// Returns `true` if `a < b` and the two values are not approximately equal.
#[inline]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a < b && !approx_eq(a, b)
}

/// Returns `true` if `a > b` and the two values are not approximately equal.
#[inline]
pub fn definitely_gt(a: f64, b: f64) -> bool {
    a > b && !approx_eq(a, b)
}

/// A wrapper around `f64` implementing a total order (NaN sorts last).
///
/// Useful for `sort_by_key`, `max_by_key`, `BinaryHeap`, ... where the
/// standard `f64` only provides `PartialOrd`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64Ord(pub f64);

impl Eq for F64Ord {}

impl PartialOrd for F64Ord {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for F64Ord {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl From<f64> for F64Ord {
    fn from(v: f64) -> Self {
        F64Ord(v)
    }
}

impl F64Ord {
    /// Returns the wrapped value.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_exact() {
        assert!(approx_eq(1.0, 1.0));
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(-3.5, -3.5));
    }

    #[test]
    fn approx_eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-12)));
        assert!(!approx_eq(1.0, 1.001));
    }

    #[test]
    fn approx_ge_le() {
        assert!(approx_ge(2.0, 1.0));
        assert!(approx_ge(1.0, 1.0 + 1e-12));
        assert!(!approx_ge(1.0, 2.0));
        assert!(approx_le(1.0, 2.0));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(!approx_le(2.0, 1.0));
    }

    #[test]
    fn definitely_comparisons() {
        assert!(definitely_lt(1.0, 2.0));
        assert!(!definitely_lt(1.0, 1.0 + 1e-13));
        assert!(definitely_gt(2.0, 1.0));
        assert!(!definitely_gt(1.0 + 1e-13, 1.0));
    }

    #[test]
    fn f64ord_sorts_nan_last() {
        let mut v = [F64Ord(3.0), F64Ord(f64::NAN), F64Ord(1.0), F64Ord(2.0)];
        v.sort();
        assert_eq!(v[0].0, 1.0);
        assert_eq!(v[1].0, 2.0);
        assert_eq!(v[2].0, 3.0);
        assert!(v[3].0.is_nan());
    }

    #[test]
    fn f64ord_max_by_key() {
        let xs = [1.5, 9.25, -3.0];
        let max = xs.iter().copied().max_by_key(|&x| F64Ord(x)).unwrap();
        assert_eq!(max, 9.25);
    }
}
