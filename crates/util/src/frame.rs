//! Newline-delimited frame I/O for the scheduling service wire protocol.
//!
//! The daemon (`malsd`) and its clients exchange JSON documents one per
//! line: a *frame* is a byte sequence terminated by `\n`, and compact JSON
//! never contains a raw newline, so framing and payload never interfere.
//! [`FrameReader`] accumulates bytes from any [`Read`] into whole frames and
//! enforces a size cap so an untrusted peer cannot balloon the buffer — an
//! oversized frame is *discarded up to its terminating newline* and reported
//! as [`FrameError::Oversized`], which keeps the connection alive: the next
//! frame parses normally.
//!
//! The reader is interruption-friendly: on an [`io::ErrorKind::WouldBlock`]
//! or [`io::ErrorKind::TimedOut`] error (a socket with a read timeout — the
//! daemon's shutdown-polling pattern) the partial frame stays buffered and
//! the caller simply calls [`FrameReader::read_frame`] again later.

use std::io::{self, Read, Write};

/// Default frame-size cap: large enough for a 10⁵-task graph JSON, small
/// enough to bound per-connection memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Errors produced while reading frames.
#[derive(Debug)]
pub enum FrameError {
    /// A frame exceeded the size cap; its bytes were discarded up to (and
    /// including) the terminating newline and the connection remains
    /// usable. The payload is the cap that was exceeded.
    Oversized(usize),
    /// An underlying I/O error. `WouldBlock` / `TimedOut` are retryable:
    /// buffered partial-frame bytes are kept.
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized(cap) => write!(f, "frame exceeds {cap} bytes"),
            FrameError::Io(e) => write!(f, "frame i/o error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// True when the error is a read timeout / would-block / interrupted
    /// condition: the frame in progress is still buffered and a later
    /// [`FrameReader::read_frame`] call will resume it.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
            )
        )
    }
}

/// Reads newline-delimited frames from an underlying reader.
///
/// Unlike `BufRead::read_line` this type owns the partial-frame buffer, so
/// read timeouts (used by the daemon to poll its shutdown token) never lose
/// bytes, and it enforces a frame-size cap without killing the stream.
#[derive(Debug)]
pub struct FrameReader<R> {
    inner: R,
    /// Bytes of the frame in progress (no newline seen yet).
    partial: Vec<u8>,
    /// Fixed-size read buffer; `buf[start..end]` is unconsumed.
    buf: Vec<u8>,
    start: usize,
    end: usize,
    max_frame: usize,
    /// When true, the current frame already blew the cap: discard until the
    /// next newline, then report `Oversized` once.
    discarding: bool,
}

impl<R: Read> FrameReader<R> {
    /// Wraps `inner` with the [`DEFAULT_MAX_FRAME_BYTES`] cap.
    pub fn new(inner: R) -> Self {
        Self::with_max_frame(inner, DEFAULT_MAX_FRAME_BYTES)
    }

    /// Wraps `inner` with an explicit frame-size cap (in bytes, excluding
    /// the newline). A cap of 0 is clamped to 1.
    pub fn with_max_frame(inner: R, max_frame: usize) -> Self {
        FrameReader {
            inner,
            partial: Vec::new(),
            buf: vec![0; 64 * 1024],
            start: 0,
            end: 0,
            max_frame: max_frame.max(1),
            discarding: false,
        }
    }

    /// The underlying reader (e.g. to adjust socket timeouts).
    pub fn get_ref(&self) -> &R {
        &self.inner
    }

    /// Reads the next frame. Returns:
    ///
    /// * `Ok(Some(frame))` — one complete line, newline stripped (a
    ///   trailing `\r` is stripped too), decoded as UTF-8 with invalid
    ///   bytes replaced (the JSON parser rejects them downstream);
    /// * `Ok(None)` — clean end of stream (unterminated trailing bytes are
    ///   dropped: a frame is only a frame once its newline arrives);
    /// * `Err(FrameError::Oversized)` — the frame blew the cap and was
    ///   discarded; call again for the next frame;
    /// * `Err(FrameError::Io)` — underlying error; retryable kinds keep the
    ///   partial frame buffered (see [`FrameError::is_retryable`]).
    pub fn read_frame(&mut self) -> Result<Option<String>, FrameError> {
        loop {
            if let Some(result) = self.scan_buffered() {
                return result.map(Some);
            }
            // The buffered bytes held no complete frame: refill.
            let n = self.inner.read(&mut self.buf)?;
            if n == 0 {
                self.partial.clear();
                self.discarding = false;
                return Ok(None);
            }
            self.start = 0;
            self.end = n;
        }
    }

    /// Consumes `buf[start..end]`, returning a completed frame (or the
    /// deferred oversize report) if one terminates inside the buffer.
    fn scan_buffered(&mut self) -> Option<Result<String, FrameError>> {
        while self.start < self.end {
            let slice = &self.buf[self.start..self.end];
            match slice.iter().position(|&b| b == b'\n') {
                Some(nl) => {
                    let (line_part, consumed) = (&slice[..nl], nl + 1);
                    if self.discarding {
                        self.start += consumed;
                        self.discarding = false;
                        self.partial.clear();
                        return Some(Err(FrameError::Oversized(self.max_frame)));
                    }
                    if self.partial.len() + line_part.len() > self.max_frame {
                        self.start += consumed;
                        self.partial.clear();
                        return Some(Err(FrameError::Oversized(self.max_frame)));
                    }
                    self.partial.extend_from_slice(line_part);
                    self.start += consumed;
                    let mut text = String::from_utf8_lossy(&self.partial).into_owned();
                    self.partial.clear();
                    if text.ends_with('\r') {
                        text.pop();
                    }
                    return Some(Ok(text));
                }
                None => {
                    if !self.discarding {
                        if self.partial.len() + slice.len() > self.max_frame {
                            self.discarding = true;
                            self.partial.clear();
                        } else {
                            self.partial.extend_from_slice(slice);
                        }
                    }
                    self.start = self.end;
                }
            }
        }
        None
    }
}

/// Writes one frame: the payload followed by `\n`, then flushes, so the
/// frame is visible to the peer immediately (the daemon's per-connection
/// writer is behind a mutex — a buffered half-written frame would deadlock
/// latency, not memory).
///
/// The payload must not contain a raw newline (compact JSON never does);
/// embedded newlines would be read back as two frames.
pub fn write_frame(writer: &mut impl Write, payload: &str) -> io::Result<()> {
    debug_assert!(
        !payload.contains('\n'),
        "frame payloads must be newline-free"
    );
    writer.write_all(payload.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    /// A reader handing out its script one fragment per call; `None`
    /// fragments yield a `WouldBlock` error (simulating a read timeout).
    struct Script {
        parts: Vec<Option<Vec<u8>>>,
        at: usize,
    }

    impl Read for Script {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.at >= self.parts.len() {
                return Ok(0);
            }
            let part = self.parts[self.at].take();
            self.at += 1;
            match part {
                None => Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout")),
                Some(bytes) => {
                    buf[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
            }
        }
    }

    fn script(parts: &[Option<&str>]) -> Script {
        Script {
            parts: parts
                .iter()
                .map(|p| p.map(|s| s.as_bytes().to_vec()))
                .collect(),
            at: 0,
        }
    }

    #[test]
    fn frames_round_trip() {
        let mut out = Vec::new();
        write_frame(&mut out, "{\"a\":1}").unwrap();
        write_frame(&mut out, "{\"b\":2}").unwrap();
        let mut reader = FrameReader::new(Cursor::new(out));
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some("{\"a\":1}"));
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some("{\"b\":2}"));
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn split_reads_reassemble_one_frame() {
        let mut reader = FrameReader::new(script(&[
            Some("{\"spl"),
            Some("it\":"),
            Some("true}\n{\"next\":1}\n"),
        ]));
        assert_eq!(
            reader.read_frame().unwrap().as_deref(),
            Some("{\"split\":true}")
        );
        assert_eq!(
            reader.read_frame().unwrap().as_deref(),
            Some("{\"next\":1}")
        );
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn timeouts_keep_the_partial_frame() {
        let mut reader = FrameReader::new(script(&[Some("{\"ha"), None, Some("lf\":1}\n")]));
        let err = reader.read_frame().unwrap_err();
        assert!(err.is_retryable(), "{err}");
        assert_eq!(
            reader.read_frame().unwrap().as_deref(),
            Some("{\"half\":1}")
        );
    }

    #[test]
    fn oversized_frames_are_discarded_without_killing_the_stream() {
        let mut input = String::new();
        input.push_str(&"x".repeat(100));
        input.push('\n');
        input.push_str("ok\n");
        let mut reader = FrameReader::with_max_frame(Cursor::new(input), 10);
        match reader.read_frame() {
            Err(FrameError::Oversized(10)) => {}
            other => panic!("expected Oversized, got {other:?}"),
        }
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some("ok"));
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn oversized_detection_works_across_split_reads() {
        // The oversize trips while the newline is still several reads away.
        let mut reader = FrameReader::with_max_frame(
            script(&[Some("aaaaaa"), Some("bbbbbb"), Some("cc\nok\n")]),
            8,
        );
        assert!(matches!(reader.read_frame(), Err(FrameError::Oversized(8))));
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some("ok"));
    }

    #[test]
    fn truncated_final_frame_is_dropped_at_eof() {
        let mut reader = FrameReader::new(Cursor::new("{\"whole\":1}\n{\"trunc"));
        assert_eq!(
            reader.read_frame().unwrap().as_deref(),
            Some("{\"whole\":1}")
        );
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn crlf_and_empty_frames() {
        let mut reader = FrameReader::new(Cursor::new("a\r\n\nb\n"));
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some("a"));
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some(""));
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some("b"));
        assert_eq!(reader.read_frame().unwrap(), None);
    }

    #[test]
    fn exact_cap_is_allowed() {
        let mut reader = FrameReader::with_max_frame(Cursor::new("12345\n"), 5);
        assert_eq!(reader.read_frame().unwrap().as_deref(), Some("12345"));
    }
}
