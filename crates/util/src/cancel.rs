//! Cooperative cancellation primitives for anytime solving.
//!
//! Solvers in the workspace are *cooperatively* cancellable: a long-running
//! search periodically polls a [`CancelSignal`] (a shared [`CancelToken`]
//! plus an optional wall-clock [`Deadline`]) at its natural quiescent points
//! — once per committed task for the list heuristics, once per explored node
//! for the exact backends — and winds down with its incumbent-so-far when
//! the signal trips. Nothing is ever killed mid-commit, so every schedule
//! that escapes a cancelled solve is still internally consistent.
//!
//! Tokens form a single-level hierarchy: [`CancelToken::child`] creates a
//! token that also trips when its parent does, which is how a portfolio race
//! cancels individual members without the members being able to cancel each
//! other.

use crate::clock::{Clock, SystemClock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared, thread-safe cancellation flag.
///
/// Cloning a token yields a handle to the *same* flag; tripping any clone
/// trips them all. A token created with [`CancelToken::child`] additionally
/// observes its parent: it reports cancelled when either its own flag or the
/// parent's is set, but cancelling the child never propagates upward.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    own: Arc<AtomicBool>,
    parent: Option<Arc<AtomicBool>>,
}

impl CancelToken {
    /// Creates a fresh, untripped token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a token that also trips when `parent` trips. Tripping the
    /// child does not affect the parent.
    pub fn child(parent: &CancelToken) -> Self {
        CancelToken {
            own: Arc::new(AtomicBool::new(false)),
            parent: Some(parent.own.clone()),
        }
    }

    /// Trips the token. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.own.store(true, Ordering::Release);
    }

    /// True once this token (or its parent, for child tokens) has tripped.
    pub fn is_cancelled(&self) -> bool {
        self.own.load(Ordering::Acquire)
            || self
                .parent
                .as_ref()
                .is_some_and(|p| p.load(Ordering::Acquire))
    }
}

/// A deadline on some [`Clock`]'s timeline.
///
/// The plain constructors ([`Deadline::after`], [`Deadline::after_millis`])
/// and poll ([`Deadline::expired`]) read the wall clock, exactly as before
/// the clock abstraction existed. Code running on a virtual timeline — the
/// online replay simulator — uses the `_on` variants with its own clock, so
/// a deadline can expire in virtual time without a single real sleep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `timeout` from now on the wall clock.
    pub fn after(timeout: Duration) -> Self {
        Self::after_on(&SystemClock, timeout)
    }

    /// A deadline `timeout` from now on `clock`'s timeline.
    pub fn after_on(clock: &impl Clock, timeout: Duration) -> Self {
        Deadline {
            at: clock.now() + timeout,
        }
    }

    /// A deadline `millis` milliseconds from now on the wall clock.
    pub fn after_millis(millis: u64) -> Self {
        Self::after(Duration::from_millis(millis))
    }

    /// The instant at which the deadline expires.
    pub fn instant(&self) -> Instant {
        self.at
    }

    /// True once the deadline has passed on the wall clock.
    pub fn expired(&self) -> bool {
        self.expired_on(&SystemClock)
    }

    /// True once the deadline has passed on `clock`'s timeline.
    pub fn expired_on(&self, clock: &impl Clock) -> bool {
        clock.now() >= self.at
    }
}

/// The cancellation inputs a solver polls: an optional shared token and an
/// optional deadline. `Default` is "never cancelled", so existing call sites
/// that don't care about cancellation cost one branch per poll.
#[derive(Debug, Clone, Copy, Default)]
pub struct CancelSignal<'a> {
    /// Shared flag tripped by whoever wants the solve to stop.
    pub token: Option<&'a CancelToken>,
    /// Wall-clock budget; the solve stops at its next poll after expiry.
    pub deadline: Option<Deadline>,
}

impl<'a> CancelSignal<'a> {
    /// A signal that only observes `token`.
    pub fn from_token(token: &'a CancelToken) -> Self {
        CancelSignal {
            token: Some(token),
            deadline: None,
        }
    }

    /// A signal that only observes `deadline`.
    pub fn from_deadline(deadline: Deadline) -> Self {
        CancelSignal {
            token: None,
            deadline: Some(deadline),
        }
    }

    /// Returns a copy with the deadline set (replacing any existing one).
    pub fn with_deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// True once the token has tripped or the deadline has passed. This is
    /// the poll solvers place at their per-commit / per-node check points.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_some_and(CancelToken::is_cancelled)
            || self.deadline.is_some_and(|d| d.expired())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_untripped() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(t.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
    }

    #[test]
    fn clones_share_the_flag() {
        let t = CancelToken::new();
        let u = t.clone();
        u.cancel();
        assert!(t.is_cancelled());
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = CancelToken::child(&parent);
        assert!(!child.is_cancelled());
        parent.cancel();
        assert!(child.is_cancelled());

        let parent2 = CancelToken::new();
        let child2 = CancelToken::child(&parent2);
        child2.cancel();
        assert!(child2.is_cancelled());
        assert!(!parent2.is_cancelled(), "child must not trip the parent");
    }

    #[test]
    fn token_crosses_threads() {
        let t = CancelToken::new();
        let u = t.clone();
        let handle = std::thread::spawn(move || u.cancel());
        handle.join().unwrap();
        assert!(t.is_cancelled());
    }

    #[test]
    fn deadline_expiry() {
        let past = Deadline::after(Duration::ZERO);
        assert!(past.expired());
        let future = Deadline::after(Duration::from_secs(3600));
        assert!(!future.expired());
        assert!(future.instant() > Instant::now());
    }

    #[test]
    fn deadline_on_virtual_clock_expires_without_sleeping() {
        let clock = crate::clock::VirtualClock::new();
        let deadline = Deadline::after_on(&clock, Duration::from_secs(5));
        assert!(!deadline.expired_on(&clock));
        clock.advance_to_secs(4.9);
        assert!(!deadline.expired_on(&clock));
        clock.advance_to_secs(5.0);
        assert!(deadline.expired_on(&clock));
        // The wall clock has barely moved: the same deadline is hours away
        // in real time.
        assert!(!deadline.expired());
    }

    #[test]
    fn signal_combines_token_and_deadline() {
        assert!(!CancelSignal::default().is_cancelled());

        let t = CancelToken::new();
        let s = CancelSignal::from_token(&t);
        assert!(!s.is_cancelled());
        t.cancel();
        assert!(s.is_cancelled());

        let s = CancelSignal::from_deadline(Deadline::after(Duration::from_secs(3600)));
        assert!(!s.is_cancelled());
        let s = s.with_deadline(Deadline::after(Duration::ZERO));
        assert!(s.is_cancelled());
    }
}
