//! Clock abstraction: wall time for daemons, virtual time for replays.
//!
//! The online replay simulator advances time by jumping between events on a
//! virtual timeline — sleeping through a Poisson trace for real would make a
//! 10⁴-task replay take hours and tie its outcome to scheduler jitter. The
//! [`Clock`] trait is the seam: production code ([`Deadline`](crate::cancel::Deadline),
//! the daemon)
//! reads a [`SystemClock`], the simulator reads a [`VirtualClock`] it
//! advances itself, and both hand out [`Instant`]s so the rest of the
//! cancellation machinery does not care which one it is looking at.
//!
//! [`VirtualClock`] keeps its time as `f64` seconds since an arbitrary base
//! instant, stored as IEEE-754 bits in an `AtomicU64`. For non-negative
//! floats the bit pattern is monotone in the value, so `fetch_max` on the
//! bits advances the clock atomically and monotonically — a late-arriving
//! `advance_to` from another thread can never move time backwards.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of "now". See the module docs for why this exists.
pub trait Clock {
    /// The current time as an [`Instant`] on this clock's timeline.
    fn now(&self) -> Instant;
}

/// The real wall clock: [`Instant::now`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A manually advanced clock for event-driven simulation.
///
/// Clones share the same timeline (the bits live behind an [`Arc`]), so a
/// simulator can hand a clone to a [`Deadline`](crate::cancel::Deadline)
/// check while keeping the
/// advancing side for itself. Time only moves forward: [`VirtualClock::advance_to_secs`]
/// with a time earlier than the current one is a no-op.
#[derive(Debug, Clone)]
pub struct VirtualClock {
    /// The instant that virtual second 0 maps to.
    base: Instant,
    /// Current virtual time in seconds, stored as `f64::to_bits`. For
    /// non-negative floats the IEEE bit order equals the numeric order,
    /// which makes `fetch_max` a monotone advance.
    bits: Arc<AtomicU64>,
}

impl Default for VirtualClock {
    fn default() -> Self {
        Self::new()
    }
}

impl VirtualClock {
    /// A fresh clock at virtual second 0.
    pub fn new() -> Self {
        VirtualClock {
            base: Instant::now(),
            bits: Arc::new(AtomicU64::new(0.0f64.to_bits())),
        }
    }

    /// Current virtual time in seconds, exactly as last advanced.
    pub fn now_secs(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Advances the clock to `secs` (no-op if time is already past it).
    ///
    /// # Panics
    /// Panics if `secs` is negative or NaN — the bit-order trick only holds
    /// for non-negative finite values, and a simulation timeline never needs
    /// anything else.
    pub fn advance_to_secs(&self, secs: f64) {
        assert!(
            secs >= 0.0,
            "virtual time must be a non-negative number, got {secs}"
        );
        self.bits.fetch_max(secs.to_bits(), Ordering::AcqRel);
    }

    /// Advances the clock by `delta` seconds from its current time.
    pub fn advance(&self, delta: f64) {
        assert!(delta >= 0.0, "cannot advance by a negative delta: {delta}");
        self.advance_to_secs(self.now_secs() + delta);
    }

    /// Virtual seconds elapsed since `earlier_secs`.
    pub fn elapsed_since(&self, earlier_secs: f64) -> f64 {
        self.now_secs() - earlier_secs
    }
}

impl Clock for VirtualClock {
    /// The virtual time projected onto the [`Instant`] axis: `base` plus the
    /// current virtual seconds. Durations are capped losslessly via
    /// `Duration::from_secs_f64`'s own domain (non-negative, finite).
    fn now(&self) -> Instant {
        self.base + Duration::from_secs_f64(self.now_secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_clock_tracks_instant_now() {
        let clock = SystemClock;
        let before = Instant::now();
        let now = clock.now();
        let after = Instant::now();
        assert!(before <= now && now <= after);
    }

    #[test]
    fn virtual_clock_starts_at_zero_and_advances() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_secs(), 0.0);
        clock.advance_to_secs(1.5);
        assert_eq!(clock.now_secs(), 1.5);
        clock.advance(0.25);
        assert_eq!(clock.now_secs(), 1.75);
    }

    #[test]
    fn virtual_clock_never_moves_backwards() {
        let clock = VirtualClock::new();
        clock.advance_to_secs(10.0);
        clock.advance_to_secs(3.0); // stale advance: ignored
        assert_eq!(clock.now_secs(), 10.0);
        assert_eq!(clock.elapsed_since(4.0), 6.0);
    }

    #[test]
    fn virtual_clock_clones_share_the_timeline() {
        let clock = VirtualClock::new();
        let observer = clock.clone();
        clock.advance_to_secs(42.0);
        assert_eq!(observer.now_secs(), 42.0);
        assert_eq!(observer.now(), clock.now());
    }

    #[test]
    fn virtual_instants_are_ordered_like_virtual_seconds() {
        let clock = VirtualClock::new();
        let t0 = clock.now();
        clock.advance_to_secs(2.0);
        let t2 = clock.now();
        assert!(t2 > t0);
        assert_eq!(t2 - t0, Duration::from_secs(2));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_virtual_time_is_rejected() {
        VirtualClock::new().advance_to_secs(-1.0);
    }
}
