//! The pluggable exact-backend layer.
//!
//! Every way of obtaining (or approaching) an optimal schedule sits behind
//! one trait, [`ExactBackend`], with a shared budget type ([`SolveLimits`])
//! and a shared outcome type ([`ExactOutcome`]). Three backends ship
//! in-tree:
//!
//! | backend | strategy | when it wins |
//! |---|---|---|
//! | [`BranchAndBound`] | combinatorial search over the list-scheduling decision space | tight memory, small DAGs — memory pruning is native |
//! | [`MilpBackend`](crate::compact::MilpBackend) | in-tree simplex + branch-and-bound MILP over a compact disjunctive model | ample/moderate memory — the LP bound closes the gap in few nodes and certifies optimality |
//! | [`LpExport`] | emits the paper's full § 4 ILP in CPLEX LP text | handing the instance to an external industrial solver |
//!
//! The experiment campaigns select a backend with `--exact-backend
//! {milp,bb,lp-export}` (see [`ExactBackendKind`]), and [`ExactScheduler`]
//! adapts any backend to the [`Scheduler`] trait so exact solvers can slot
//! into the same sweeps as the heuristics.

use crate::bb::BranchAndBound;
use crate::ilp::build_ilp;
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sched::{ScheduleError, Scheduler};
use mals_sim::Schedule;
use mals_util::CancelSignal;
use std::path::PathBuf;

// The budget type is shared with the heuristics' engine layer and lives next
// to the `Solver` trait; it is re-exported here because the exact backends
// are its primary consumer.
pub use mals_sched::SolveLimits;

/// Outcome of an exact solve.
#[derive(Debug, Clone)]
pub enum ExactOutcome {
    /// The search completed: `schedule` is provably optimal within the
    /// backend's decision space.
    Optimal {
        /// The optimal schedule.
        schedule: Schedule,
        /// Its makespan.
        makespan: f64,
        /// Nodes expanded.
        nodes: u64,
    },
    /// A budget ran out; `schedule` is the best incumbent found but carries
    /// no optimality proof.
    Feasible {
        /// The best schedule found.
        schedule: Schedule,
        /// Its makespan.
        makespan: f64,
        /// Nodes expanded.
        nodes: u64,
    },
    /// The search completed without finding any schedule: the instance is
    /// infeasible under the memory bounds (within the backend's decision
    /// space).
    Infeasible {
        /// Nodes expanded.
        nodes: u64,
    },
    /// A budget ran out before any schedule was found, or the backend does
    /// not solve at all (the LP exporter) — nothing is proven.
    LimitHit {
        /// Nodes expanded.
        nodes: u64,
    },
}

impl ExactOutcome {
    /// The schedule carried by the outcome, if any.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            ExactOutcome::Optimal { schedule, .. } | ExactOutcome::Feasible { schedule, .. } => {
                Some(schedule)
            }
            _ => None,
        }
    }

    /// The makespan carried by the outcome, if any.
    pub fn makespan(&self) -> Option<f64> {
        match self {
            ExactOutcome::Optimal { makespan, .. } | ExactOutcome::Feasible { makespan, .. } => {
                Some(*makespan)
            }
            _ => None,
        }
    }

    /// Nodes expanded by the solve.
    pub fn nodes(&self) -> u64 {
        match self {
            ExactOutcome::Optimal { nodes, .. }
            | ExactOutcome::Feasible { nodes, .. }
            | ExactOutcome::Infeasible { nodes }
            | ExactOutcome::LimitHit { nodes } => *nodes,
        }
    }

    /// `true` for [`ExactOutcome::Optimal`].
    pub fn is_optimal(&self) -> bool {
        matches!(self, ExactOutcome::Optimal { .. })
    }

    /// `true` when the outcome settles the instance (optimal schedule or
    /// infeasibility proof).
    pub fn is_proven(&self) -> bool {
        matches!(
            self,
            ExactOutcome::Optimal { .. } | ExactOutcome::Infeasible { .. }
        )
    }
}

/// An exact solver (or exporter) for the memory-constrained scheduling
/// problem.
pub trait ExactBackend {
    /// Short stable name, used as the series label in campaigns.
    fn name(&self) -> &'static str;

    /// Solves `graph` on `platform` within `limits`.
    fn solve(&self, graph: &TaskGraph, platform: &Platform, limits: &SolveLimits) -> ExactOutcome;

    /// [`ExactBackend::solve`] with a cooperative cancel signal, polled once
    /// per search node: a trip ends the solve with the incumbent-so-far
    /// (mapped to [`ExactOutcome::Feasible`]) or, when nothing was found
    /// yet, [`ExactOutcome::LimitHit`]. The default implementation ignores
    /// the signal — backends without inner loops (the LP exporter) need
    /// nothing more; the searching backends override it.
    fn solve_cancellable(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        limits: &SolveLimits,
        cancel: CancelSignal<'_>,
    ) -> ExactOutcome {
        let _ = cancel;
        self.solve(graph, platform, limits)
    }
}

impl ExactBackend for BranchAndBound {
    fn name(&self) -> &'static str {
        "Optimal(B&B)"
    }

    /// Runs the combinatorial search; `limits.node_limit` overrides the
    /// solver's own node budget.
    fn solve(&self, graph: &TaskGraph, platform: &Platform, limits: &SolveLimits) -> ExactOutcome {
        ExactBackend::solve_cancellable(self, graph, platform, limits, CancelSignal::default())
    }

    /// The combinatorial search polling `cancel` once per expanded node.
    fn solve_cancellable(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        limits: &SolveLimits,
        cancel: CancelSignal<'_>,
    ) -> ExactOutcome {
        let result = BranchAndBound::with_node_limit(limits.node_limit)
            .solve_cancellable(graph, platform, cancel);
        let nodes = result.nodes_explored;
        match (result.schedule, result.proven_optimal) {
            (Some(schedule), true) => ExactOutcome::Optimal {
                makespan: schedule.makespan(),
                schedule,
                nodes,
            },
            (Some(schedule), false) => ExactOutcome::Feasible {
                makespan: schedule.makespan(),
                schedule,
                nodes,
            },
            (None, true) => ExactOutcome::Infeasible { nodes },
            (None, false) => ExactOutcome::LimitHit { nodes },
        }
    }
}

/// The LP-text exporter backend: builds the paper's full § 4 ILP and writes
/// it in CPLEX LP format for an external MILP solver. It never solves
/// anything itself, so [`ExactBackend::solve`] always returns
/// [`ExactOutcome::LimitHit`] with zero nodes — after writing the file when
/// a path is configured.
#[derive(Debug, Clone, Default)]
pub struct LpExport {
    /// Where to write the LP text (`None`: build the model but write
    /// nothing; use [`LpExport::export_text`] to get the text directly).
    pub path: Option<PathBuf>,
}

impl LpExport {
    /// An exporter writing to `path` on every solve.
    pub fn to_path(path: impl Into<PathBuf>) -> Self {
        LpExport {
            path: Some(path.into()),
        }
    }

    /// The CPLEX LP text of the instance's ILP.
    pub fn export_text(graph: &TaskGraph, platform: &Platform) -> String {
        build_ilp(graph, platform).to_lp_format()
    }
}

impl ExactBackend for LpExport {
    fn name(&self) -> &'static str {
        "ILP(LP-export)"
    }

    fn solve(&self, graph: &TaskGraph, platform: &Platform, _limits: &SolveLimits) -> ExactOutcome {
        if let Some(path) = &self.path {
            let text = LpExport::export_text(graph, platform);
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("LpExport: cannot write {}: {e}", path.display());
            }
        }
        ExactOutcome::LimitHit { nodes: 0 }
    }
}

/// The solving backends selectable from the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExactBackendKind {
    /// Combinatorial branch-and-bound over the list-scheduling space.
    BranchAndBound,
    /// In-tree simplex + MILP branch-and-bound over the compact model.
    Milp,
    /// CPLEX LP text export of the paper's full ILP (does not solve).
    LpExport,
}

impl ExactBackendKind {
    /// Parses the `--exact-backend` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "bb" => Some(ExactBackendKind::BranchAndBound),
            "milp" => Some(ExactBackendKind::Milp),
            "lp-export" => Some(ExactBackendKind::LpExport),
            _ => None,
        }
    }

    /// The flag values accepted by [`ExactBackendKind::parse`].
    pub const FLAG_VALUES: &'static str = "bb|milp|lp-export";

    /// The solver-registry key of this backend (see
    /// [`crate::solver_registry`]), equal to its flag value.
    pub fn solver_key(self) -> &'static str {
        match self {
            ExactBackendKind::BranchAndBound => "bb",
            ExactBackendKind::Milp => "milp",
            ExactBackendKind::LpExport => "lp-export",
        }
    }

    /// The series label this backend reports in campaigns and sweeps.
    pub fn method_name(self) -> &'static str {
        match self {
            ExactBackendKind::BranchAndBound => "Optimal(B&B)",
            ExactBackendKind::Milp => "Optimal(MILP)",
            ExactBackendKind::LpExport => "ILP(LP-export)",
        }
    }

    /// Builds the backend.
    pub fn backend(self) -> Box<dyn ExactBackend> {
        match self {
            ExactBackendKind::BranchAndBound => Box::new(BranchAndBound::default()),
            ExactBackendKind::Milp => Box::new(crate::compact::MilpBackend),
            ExactBackendKind::LpExport => Box::new(LpExport::default()),
        }
    }
}

/// Adapts an [`ExactBackend`] to the [`Scheduler`] trait so exact solvers
/// can ride the same sweep/minimum-memory machinery as the heuristics. A
/// solve that proves infeasibility — or gives up without a schedule — maps
/// to [`ScheduleError::Infeasible`].
pub struct ExactScheduler {
    backend: Box<dyn ExactBackend>,
    limits: SolveLimits,
    name: &'static str,
}

impl ExactScheduler {
    /// Wraps the backend selected by `kind` with the given limits.
    pub fn new(kind: ExactBackendKind, limits: SolveLimits) -> Self {
        ExactScheduler {
            backend: kind.backend(),
            limits,
            name: kind.method_name(),
        }
    }
}

impl Scheduler for ExactScheduler {
    fn name(&self) -> &'static str {
        self.name
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        graph.validate()?;
        match self.backend.solve(graph, platform, &self.limits) {
            ExactOutcome::Optimal { schedule, .. } | ExactOutcome::Feasible { schedule, .. } => {
                Ok(schedule)
            }
            _ => Err(ScheduleError::Infeasible {
                scheduled: 0,
                total: graph.n_tasks(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;

    #[test]
    fn bb_backend_maps_outcomes() {
        let (g, _) = dex();
        let limits = SolveLimits::default();
        let opt = ExactBackend::solve(
            &BranchAndBound::default(),
            &g,
            &Platform::single_pair(5.0, 5.0),
            &limits,
        );
        assert!(opt.is_optimal());
        assert_eq!(opt.makespan(), Some(6.0));
        assert!(opt.schedule().is_some());
        let inf = ExactBackend::solve(
            &BranchAndBound::default(),
            &g,
            &Platform::single_pair(2.0, 2.0),
            &limits,
        );
        assert!(matches!(inf, ExactOutcome::Infeasible { .. }));
        assert!(inf.is_proven());
        assert_eq!(inf.makespan(), None);
    }

    #[test]
    fn lp_export_writes_the_model() {
        let (g, _) = dex();
        let dir = std::env::temp_dir().join("mals_lp_export_test.lp");
        let backend = LpExport::to_path(&dir);
        let outcome = backend.solve(
            &g,
            &Platform::single_pair(5.0, 5.0),
            &SolveLimits::default(),
        );
        assert!(matches!(outcome, ExactOutcome::LimitHit { nodes: 0 }));
        let text = std::fs::read_to_string(&dir).unwrap();
        assert!(text.contains("Minimize"));
        assert!(text.trim_end().ends_with("End"));
        std::fs::remove_file(&dir).ok();
        // And the direct text API agrees.
        assert_eq!(
            text,
            LpExport::export_text(&g, &Platform::single_pair(5.0, 5.0))
        );
    }

    #[test]
    fn backend_kind_parsing_and_names() {
        assert_eq!(
            ExactBackendKind::parse("bb"),
            Some(ExactBackendKind::BranchAndBound)
        );
        assert_eq!(
            ExactBackendKind::parse("milp"),
            Some(ExactBackendKind::Milp)
        );
        assert_eq!(
            ExactBackendKind::parse("lp-export"),
            Some(ExactBackendKind::LpExport)
        );
        assert_eq!(ExactBackendKind::parse("cplex"), None);
        assert_eq!(
            ExactBackendKind::BranchAndBound.method_name(),
            "Optimal(B&B)"
        );
        assert_eq!(ExactBackendKind::Milp.method_name(), "Optimal(MILP)");
        assert_eq!(ExactBackendKind::Milp.backend().name(), "Optimal(MILP)");
    }

    #[test]
    fn exact_scheduler_adapter() {
        let (g, _) = dex();
        let sched = ExactScheduler::new(ExactBackendKind::BranchAndBound, SolveLimits::default());
        assert_eq!(Scheduler::name(&sched), "Optimal(B&B)");
        let s = sched
            .schedule(&g, &Platform::single_pair(5.0, 5.0))
            .unwrap();
        assert_eq!(s.makespan(), 6.0);
        let err = sched
            .schedule(&g, &Platform::single_pair(2.0, 2.0))
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }
}
