//! The exact backends as unified [`Solver`]s, and the full solver registry.
//!
//! [`mals_sched::Solver`] subsumes the heuristics and the exact layer behind
//! one interface; this module implements it for every [`ExactBackend`] in
//! the crate (mapping [`ExactOutcome`] onto [`SolveOutcome`]) and assembles
//! [`solver_registry`] — the registry the experiment binaries, the facade
//! and the JSON service surface resolve solver names against:
//!
//! | key | solver | status on success |
//! |---|---|---|
//! | every [`SolverRegistry::heuristics`] key | `memheft`, `minmin`, … | `Heuristic` |
//! | `bb` | [`BranchAndBound`] | `Optimal` / `Feasible` |
//! | `milp` | [`MilpBackend`] | `Optimal` / `Feasible` |
//! | `lp-export` | [`LpExport`] (writes nothing without a path) | `LimitHit` |

use crate::backend::{ExactBackend, ExactOutcome, LpExport};
use crate::bb::BranchAndBound;
use crate::compact::MilpBackend;
use mals_dag::TaskGraph;
use mals_platform::Platform;
use mals_sched::{
    Engine, EngineConfig, OptimalityStatus, SolveCtx, SolveOutcome, Solver, SolverInfo,
    SolverRegistry,
};

/// Maps an exact-backend outcome onto the unified outcome type.
pub fn outcome_from_exact(outcome: ExactOutcome) -> SolveOutcome {
    match outcome {
        ExactOutcome::Optimal {
            schedule, nodes, ..
        } => SolveOutcome::with_schedule(schedule, OptimalityStatus::Optimal, nodes),
        ExactOutcome::Feasible {
            schedule, nodes, ..
        } => SolveOutcome::with_schedule(schedule, OptimalityStatus::Feasible, nodes),
        ExactOutcome::Infeasible { nodes } => {
            SolveOutcome::without_schedule(OptimalityStatus::Infeasible, nodes)
        }
        ExactOutcome::LimitHit { nodes } => {
            SolveOutcome::without_schedule(OptimalityStatus::LimitHit, nodes)
        }
    }
}

impl Solver for BranchAndBound {
    fn name(&self) -> &str {
        ExactBackend::name(self)
    }

    /// The combinatorial search under `ctx.limits` (the pool is unused: the
    /// search is sequential by construction), polling `ctx.cancel` per node.
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        outcome_from_exact(ExactBackend::solve_cancellable(
            self,
            graph,
            platform,
            &ctx.limits,
            ctx.cancel,
        ))
    }
}

impl Solver for MilpBackend {
    fn name(&self) -> &str {
        ExactBackend::name(self)
    }

    /// The MILP search under `ctx.limits` (node budget = LP solves,
    /// iteration budget per LP), polling `ctx.cancel` per node.
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        outcome_from_exact(ExactBackend::solve_cancellable(
            self,
            graph,
            platform,
            &ctx.limits,
            ctx.cancel,
        ))
    }
}

impl Solver for LpExport {
    fn name(&self) -> &str {
        ExactBackend::name(self)
    }

    /// Writes the § 4 ILP when a path is configured and reports
    /// [`OptimalityStatus::LimitHit`] — the exporter never solves.
    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        outcome_from_exact(ExactBackend::solve(self, graph, platform, &ctx.limits))
    }
}

/// The full solver registry: every heuristic and ablation variant of
/// `mals_sched` plus the exact backends of this crate.
pub fn solver_registry() -> SolverRegistry {
    let mut registry = SolverRegistry::heuristics();
    registry.register(
        SolverInfo {
            key: "bb",
            summary: "Optimal(B&B) — branch-and-bound over the list-scheduling space",
            memory_aware: true,
            exact: true,
        },
        |_| Box::new(BranchAndBound::default()),
    );
    registry.register(
        SolverInfo {
            key: "milp",
            summary: "Optimal(MILP) — in-tree simplex + MILP B&B over the compact model",
            memory_aware: true,
            exact: true,
        },
        |_| Box::new(MilpBackend),
    );
    registry.register(
        SolverInfo {
            key: "lp-export",
            summary: "ILP(LP-export) — emits the paper's §4 ILP in CPLEX LP text (does not solve)",
            memory_aware: true,
            exact: false,
        },
        |_| Box::new(LpExport::default()),
    );
    registry
}

/// An [`Engine`] over the full registry — the one-line entry point for
/// library users: `mals_exact::engine(EngineConfig::default())`.
pub fn engine(config: EngineConfig) -> Engine {
    Engine::new(solver_registry(), config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;
    use mals_sched::SolveLimits;
    use mals_sim::validate;

    #[test]
    fn registry_contains_heuristics_and_exact_backends() {
        let registry = solver_registry();
        assert_eq!(registry.len(), 14);
        for key in ["memheft", "heft", "bb", "milp", "lp-export"] {
            assert!(registry.entry(key).is_some(), "missing {key}");
        }
        assert!(registry.entry("bb").unwrap().info.exact);
        assert!(registry.entry("milp").unwrap().info.exact);
        assert!(!registry.entry("lp-export").unwrap().info.exact);
    }

    #[test]
    fn exact_solvers_prove_optimality_on_dex() {
        let registry = solver_registry();
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let ctx = SolveCtx::sequential();
        for key in ["bb", "milp"] {
            let solver = registry.build(key).unwrap();
            let outcome = solver.solve(&g, &platform, &ctx);
            assert_eq!(outcome.status, OptimalityStatus::Optimal, "{key}");
            assert_eq!(outcome.makespan(), Some(6.0), "{key}");
            assert!(outcome.nodes > 0, "{key}");
            let schedule = outcome.schedule.as_ref().unwrap();
            assert!(validate(&g, &platform, schedule).is_valid(), "{key}");
        }
    }

    #[test]
    fn exact_solvers_prove_infeasibility_on_tight_dex() {
        let registry = solver_registry();
        let (g, _) = dex();
        let platform = Platform::single_pair(2.0, 2.0);
        let ctx = SolveCtx::sequential();
        for key in ["bb", "milp"] {
            let outcome = registry.build(key).unwrap().solve(&g, &platform, &ctx);
            assert_eq!(outcome.status, OptimalityStatus::Infeasible, "{key}");
            assert!(outcome.schedule.is_none(), "{key}");
        }
    }

    #[test]
    fn lp_export_solver_reports_limit_hit() {
        let registry = solver_registry();
        let (g, _) = dex();
        let outcome = registry.build("lp-export").unwrap().solve(
            &g,
            &Platform::single_pair(5.0, 5.0),
            &SolveCtx::sequential(),
        );
        assert_eq!(outcome.status, OptimalityStatus::LimitHit);
        assert!(outcome.schedule.is_none());
        assert_eq!(outcome.nodes, 0);
    }

    #[test]
    fn engine_solves_by_exact_name_and_respects_limits() {
        let engine =
            engine(EngineConfig::sequential().with_limits(SolveLimits::with_node_limit(200_000)));
        let (g, _) = dex();
        let outcome = engine
            .solve("bb", &g, &Platform::single_pair(5.0, 5.0))
            .unwrap();
        assert!(outcome.is_optimal());
        // A 1-node budget cannot close the proof.
        let starved = Engine::new(
            solver_registry(),
            EngineConfig::sequential().with_limits(SolveLimits::with_node_limit(1)),
        );
        let outcome = starved
            .solve("bb", &g, &Platform::single_pair(5.0, 5.0))
            .unwrap();
        assert!(!outcome.is_optimal());
    }

    #[test]
    fn display_names_match_backend_names() {
        let registry = solver_registry();
        assert_eq!(registry.build("bb").unwrap().name(), "Optimal(B&B)");
        assert_eq!(registry.build("milp").unwrap().name(), "Optimal(MILP)");
        assert_eq!(
            registry.build("lp-export").unwrap().name(),
            "ILP(LP-export)"
        );
    }
}
