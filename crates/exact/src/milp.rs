//! Mixed-integer linear programming by best-first branch-and-bound.
//!
//! [`MilpSolver`] minimises any [`LpModel`] whose integer variables have
//! finite bounds:
//!
//! * every node's **LP relaxation** is solved with the bounded-variable
//!   simplex of [`crate::simplex`] — nodes share one [`StandardForm`] matrix
//!   and differ only in per-column bound overrides, so branching never
//!   rebuilds the matrix;
//! * the open nodes live in a **best-first** priority queue keyed by their
//!   parent relaxation bound (ties broken by creation order, which makes the
//!   search fully deterministic);
//! * branching picks the **most fractional** integer column and splits it at
//!   `⌊x⌋ / ⌈x⌉`;
//! * callers with side constraints the LP cannot express (the scheduling
//!   backend's memory bounds) plug in through the **integral-node callback**:
//!   every relaxation optimum with integral variables is handed to the
//!   callback, which either accepts it as a solution or rejects it with a
//!   globally valid cutting plane (e.g. a no-good cut) — the node is then
//!   re-solved under the grown cut pool.
//!
//! The incumbent can also be seeded from outside (`initial_cutoff`): the
//! solver then only looks for strictly better solutions, and a `proven`
//! verdict means nothing better than the cutoff exists.

use crate::model::{LpModel, Sense, StandardForm, VarId};
use crate::simplex::{solve_lp, LpStatus};
use mals_util::{CancelSignal, F64Ord};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Absolute tolerance for integrality and incumbent comparisons.
pub const INT_TOL: f64 = 1e-6;

/// Budgets of a MILP solve.
#[derive(Debug, Clone, Copy)]
pub struct MilpLimits {
    /// Maximum number of branch-and-bound nodes (LP solves).
    pub node_limit: u64,
    /// Simplex iteration budget per LP solve.
    pub lp_iteration_limit: u64,
}

impl Default for MilpLimits {
    fn default() -> Self {
        MilpLimits {
            node_limit: 50_000,
            lp_iteration_limit: 20_000,
        }
    }
}

/// Condensed verdict of a MILP solve (see [`MilpResult::status`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MilpStatus {
    /// The search space was exhausted and an incumbent was found.
    Optimal,
    /// A limit was hit; the incumbent (if any) carries no optimality proof.
    Feasible,
    /// The search space was exhausted without finding any solution.
    Infeasible,
    /// A limit was hit before any solution was found.
    LimitHit,
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpResult {
    /// `true` when the tree was exhausted with exact node relaxations, i.e.
    /// no solution better than `min(objective, initial_cutoff) − ε` exists.
    pub proven: bool,
    /// Best objective accepted by the solver or the callback.
    pub objective: Option<f64>,
    /// Structural variable values of the best *LP-integral* incumbent (absent
    /// when the incumbent came from a callback's repair value).
    pub solution: Option<Vec<f64>>,
    /// Branch-and-bound nodes expanded (= LP solves).
    pub nodes: u64,
}

impl MilpResult {
    /// Condenses the `(proven, objective)` pair into a [`MilpStatus`].
    pub fn status(&self) -> MilpStatus {
        match (self.proven, self.objective.is_some()) {
            (true, true) => MilpStatus::Optimal,
            (true, false) => MilpStatus::Infeasible,
            (false, true) => MilpStatus::Feasible,
            (false, false) => MilpStatus::LimitHit,
        }
    }
}

/// What the integral-node callback decided about a relaxation optimum whose
/// integer variables all took integral values.
pub enum IntegralDecision {
    /// The point is a genuine solution with the given objective value (often
    /// the LP objective, but a caller may report the value of a repaired /
    /// re-simulated solution instead — it must not exceed the node bound for
    /// the node to be closed soundly; a value above the bound is still used
    /// as an incumbent but forfeits the `proven` verdict).
    Accept {
        /// Objective value achieved.
        objective: f64,
    },
    /// The point violates a side constraint: exclude it with a globally
    /// valid cut and keep searching. `achieved` optionally reports a feasible
    /// objective the caller obtained while repairing the point (it tightens
    /// the cutoff but carries no solution vector).
    Reject {
        /// Cut terms over model variables (`Σ coeff·var  sense  rhs`).
        cut: (Vec<(f64, VarId)>, Sense, f64),
        /// Feasible objective value obtained as a by-product, if any.
        achieved: Option<f64>,
    },
}

/// One open node: bound overrides on structural columns plus the best known
/// lower bound inherited from the parent relaxation.
struct Node {
    bound: f64,
    overrides: Vec<(usize, f64, f64)>,
}

/// Best-first branch-and-bound MILP solver.
#[derive(Debug, Clone, Default)]
pub struct MilpSolver {
    /// Node and iteration budgets.
    pub limits: MilpLimits,
    /// Optional branching priority class per *model variable* (lower class
    /// branches first; variables not covered default to class `u8::MAX`).
    /// Within the best class the most fractional variable is chosen. The
    /// scheduling backend uses this to branch memory assignments before
    /// ordering indicators.
    pub branch_priority: Vec<u8>,
}

impl MilpSolver {
    /// Creates a solver with the given limits.
    pub fn new(limits: MilpLimits) -> Self {
        MilpSolver {
            limits,
            branch_priority: Vec::new(),
        }
    }

    /// Sets the per-variable branching priority classes.
    pub fn with_branch_priority(mut self, priority: Vec<u8>) -> Self {
        self.branch_priority = priority;
        self
    }

    /// Minimises `model`, treating every integral relaxation optimum as a
    /// solution (the pure-MILP case).
    pub fn solve(&self, model: &LpModel) -> MilpResult {
        self.solve_with(model, None, |_x, obj| IntegralDecision::Accept {
            objective: obj,
        })
    }

    /// Minimises `model` with an optional external cutoff and an
    /// integral-node callback (see the module docs).
    pub fn solve_with(
        &self,
        model: &LpModel,
        initial_cutoff: Option<f64>,
        on_integral: impl FnMut(&[f64], f64) -> IntegralDecision,
    ) -> MilpResult {
        self.solve_with_cancel(model, initial_cutoff, on_integral, CancelSignal::default())
    }

    /// [`MilpSolver::solve_with`] polling `cancel` once per node (LP solve):
    /// a trip ends the search exactly like an exhausted node budget —
    /// `proven` is forfeited and the incumbent, if any, is kept.
    pub fn solve_with_cancel(
        &self,
        model: &LpModel,
        initial_cutoff: Option<f64>,
        mut on_integral: impl FnMut(&[f64], f64) -> IntegralDecision,
        cancel: CancelSignal<'_>,
    ) -> MilpResult {
        let mut working = model.clone();
        let mut sf = working.to_standard_form();
        let int_cols: Vec<usize> = working
            .integer_var_ids()
            .iter()
            .map(|v| v.index())
            .collect();

        let mut cutoff = initial_cutoff;
        let mut best_objective: Option<f64> = None;
        let mut best_solution: Option<Vec<f64>> = None;
        let mut nodes = 0u64;
        let mut proven = true;
        let mut n_cuts = 0usize;

        // Heap of open nodes, popped in (bound, creation order). `Reverse`
        // turns the max-heap into a min-heap.
        let mut seq = 0u64;
        let mut heap: BinaryHeap<Reverse<(F64Ord, u64)>> = BinaryHeap::new();
        let mut store: Vec<Option<Node>> = Vec::new();
        let push = |heap: &mut BinaryHeap<Reverse<(F64Ord, u64)>>,
                    store: &mut Vec<Option<Node>>,
                    seq: &mut u64,
                    node: Node| {
            heap.push(Reverse((F64Ord(node.bound), *seq)));
            store.push(Some(node));
            *seq += 1;
        };
        push(
            &mut heap,
            &mut store,
            &mut seq,
            Node {
                bound: f64::NEG_INFINITY,
                overrides: Vec::new(),
            },
        );

        'search: while let Some(Reverse((F64Ord(bound), id))) = heap.pop() {
            let Some(mut node) = store[id as usize].take() else {
                continue;
            };
            if let Some(c) = cutoff {
                if bound >= c - INT_TOL {
                    // Best-first: every remaining node is at least as bad.
                    break;
                }
            }
            // A node may be re-queued several times while the callback grows
            // the cut pool; each re-solve counts against the budget.
            loop {
                if nodes >= self.limits.node_limit || cancel.is_cancelled() {
                    proven = false;
                    break 'search;
                }
                nodes += 1;

                let (lower, upper) = apply_overrides(&sf, &node.overrides);
                let lp = solve_lp(&sf, &lower, &upper, self.limits.lp_iteration_limit);
                match lp.status {
                    LpStatus::Infeasible => break,
                    LpStatus::Unbounded | LpStatus::IterationLimit => {
                        // Without a finite relaxation bound the node cannot
                        // be fathomed soundly; drop it and lose the proof.
                        proven = false;
                        break;
                    }
                    LpStatus::Optimal => {}
                }
                let obj = lp.objective;
                node.bound = node.bound.max(obj);
                if let Some(c) = cutoff {
                    if obj >= c - INT_TOL {
                        break;
                    }
                }

                match most_fractional(&lp.x, &int_cols, &self.branch_priority) {
                    Some(col) => {
                        let x = lp.x[col];
                        let (lo, hi) = (x.floor(), x.ceil());
                        let mut down = node.overrides.clone();
                        down.push((col, f64::NEG_INFINITY, lo));
                        let mut up = node.overrides;
                        up.push((col, hi, f64::INFINITY));
                        push(
                            &mut heap,
                            &mut store,
                            &mut seq,
                            Node {
                                bound: obj,
                                overrides: down,
                            },
                        );
                        push(
                            &mut heap,
                            &mut store,
                            &mut seq,
                            Node {
                                bound: obj,
                                overrides: up,
                            },
                        );
                        break;
                    }
                    None => match on_integral(&lp.x, obj) {
                        IntegralDecision::Accept { objective } => {
                            // Closing the node is only sound when the
                            // accepted value does not exceed the node's own
                            // relaxation bound: the node may still contain
                            // points between the bound and the value. Such
                            // an accept keeps the incumbent but forfeits
                            // the optimality proof.
                            if objective > obj + INT_TOL {
                                debug_assert!(false, "Accept above the node bound");
                                proven = false;
                            }
                            if cutoff.is_none_or(|c| objective < c - INT_TOL)
                                || best_objective.is_none()
                            {
                                cutoff = Some(cutoff.map_or(objective, |c| c.min(objective)));
                                if best_objective.is_none_or(|b| objective < b) {
                                    best_objective = Some(objective);
                                    best_solution = Some(lp.x.clone());
                                }
                            }
                            break;
                        }
                        IntegralDecision::Reject { cut, achieved } => {
                            if let Some(value) = achieved {
                                cutoff = Some(cutoff.map_or(value, |c| c.min(value)));
                                if best_objective.is_none_or(|b| value < b - INT_TOL) {
                                    best_objective = Some(value);
                                    best_solution = None;
                                }
                            }
                            let (terms, sense, rhs) = cut;
                            n_cuts += 1;
                            working.add_constraint(format!("lazy_{n_cuts}"), terms, sense, rhs);
                            sf = working.to_standard_form();
                            // Re-solve this node under the new cut pool.
                        }
                    },
                }
            }
        }

        MilpResult {
            proven,
            objective: best_objective,
            solution: best_solution.map(|x| x[..model.n_variables()].to_vec()),
            nodes,
        }
    }
}

/// Copies the standard-form bounds and narrows them with the node overrides
/// (later overrides intersect with earlier ones).
fn apply_overrides(sf: &StandardForm, overrides: &[(usize, f64, f64)]) -> (Vec<f64>, Vec<f64>) {
    let mut lower = sf.lower.clone();
    let mut upper = sf.upper.clone();
    for &(col, lo, hi) in overrides {
        lower[col] = lower[col].max(lo);
        upper[col] = upper[col].min(hi);
    }
    (lower, upper)
}

/// The fractional integer column to branch on: the most fractional one in
/// the best (lowest) priority class that has any fractional member.
fn most_fractional(x: &[f64], int_cols: &[usize], priority: &[u8]) -> Option<usize> {
    let mut best: Option<(u8, usize, f64)> = None;
    for &col in int_cols {
        let frac = x[col] - x[col].floor();
        let dist = frac.min(1.0 - frac);
        if dist <= INT_TOL {
            continue;
        }
        let class = priority.get(col).copied().unwrap_or(u8::MAX);
        let better = match best {
            None => true,
            Some((c, _, d)) => class < c || (class == c && dist > d),
        };
        if better {
            best = Some((class, col, dist));
        }
    }
    best.map(|(_, col, _)| col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::VarKind;

    #[test]
    fn knapsack_optimum() {
        // max 10a + 13b + 7c, 3a + 4b + 2c ≤ 5 ⇒ a + c, value 17.
        let mut m = LpModel::new();
        let a = m.add_var("a", VarKind::Binary);
        let b = m.add_var("b", VarKind::Binary);
        let c = m.add_var("c", VarKind::Binary);
        m.set_objective(vec![(-10.0, a), (-13.0, b), (-7.0, c)]);
        m.add_constraint("cap", vec![(3.0, a), (4.0, b), (2.0, c)], Sense::Le, 5.0);
        let r = MilpSolver::default().solve(&m);
        assert_eq!(r.status(), MilpStatus::Optimal);
        assert!((r.objective.unwrap() + 17.0).abs() < 1e-6);
        let x = r.solution.unwrap();
        assert!(x[0] > 0.5 && x[1] < 0.5 && x[2] > 0.5);
    }

    #[test]
    fn general_integer_rounding() {
        // min x s.t. 2x ≥ 7, x integer ⇒ x = 4.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Integer(0, 10));
        m.set_objective(vec![(1.0, x)]);
        m.add_constraint("c", vec![(2.0, x)], Sense::Ge, 7.0);
        let r = MilpSolver::default().solve(&m);
        assert_eq!(r.status(), MilpStatus::Optimal);
        assert!((r.objective.unwrap() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Binary);
        let y = m.add_var("y", VarKind::Binary);
        m.add_constraint("lo_x", vec![(1.0, x)], Sense::Ge, 1.0);
        m.add_constraint("lo_y", vec![(1.0, y)], Sense::Ge, 1.0);
        m.add_constraint("cap", vec![(1.0, x), (1.0, y)], Sense::Le, 1.0);
        let r = MilpSolver::default().solve(&m);
        assert_eq!(r.status(), MilpStatus::Infeasible);
        assert!(r.proven);
        assert!(r.objective.is_none());
    }

    #[test]
    fn external_cutoff_prunes_everything() {
        // The only solutions have objective ≥ 0; a cutoff of −1 proves that
        // nothing better than the cutoff exists without accepting anything.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Binary);
        m.set_objective(vec![(1.0, x)]);
        let r = MilpSolver::default().solve_with(&m, Some(-1.0), |_x, obj| {
            IntegralDecision::Accept { objective: obj }
        });
        assert!(r.proven);
        assert!(r.objective.is_none());
        assert_eq!(r.status(), MilpStatus::Infeasible); // nothing below cutoff
    }

    #[test]
    fn no_good_cuts_enumerate_points() {
        // Reject every integral point with a no-good cut: the solver must
        // enumerate all four (x, y) ∈ {0,1}² assignments and prove the pool
        // empty. The callback records what it saw.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Binary);
        let y = m.add_var("y", VarKind::Binary);
        m.set_objective(vec![(1.0, x), (1.0, y)]);
        let mut seen = Vec::new();
        let r = MilpSolver::default().solve_with(&m, None, |vals, _obj| {
            let xi = vals[0].round();
            let yi = vals[1].round();
            seen.push((xi as i32, yi as i32));
            // Σ_{v=1} (1 − v) + Σ_{v=0} v ≥ 1 excludes exactly this point.
            let mut terms = Vec::new();
            let mut rhs = 1.0;
            for (var, val) in [(x, xi), (y, yi)] {
                if val > 0.5 {
                    terms.push((-1.0, var));
                    rhs -= 1.0;
                } else {
                    terms.push((1.0, var));
                }
            }
            IntegralDecision::Reject {
                cut: (terms, Sense::Ge, rhs),
                achieved: None,
            }
        });
        assert!(r.proven, "cut enumeration must terminate with a proof");
        assert_eq!(r.objective, None);
        assert_eq!(seen.len(), 4, "every 0/1 point visited once: {seen:?}");
    }

    #[test]
    fn achieved_value_from_reject_becomes_incumbent() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Binary);
        m.set_objective(vec![(1.0, x)]);
        let r = MilpSolver::default().solve_with(&m, None, |vals, _obj| {
            let xi = vals[0].round();
            let (terms, rhs) = if xi > 0.5 {
                (vec![(-1.0, x)], 0.0)
            } else {
                (vec![(1.0, x)], 1.0)
            };
            IntegralDecision::Reject {
                cut: (terms, Sense::Ge, rhs),
                achieved: Some(5.0),
            }
        });
        assert!(r.proven);
        assert_eq!(r.objective, Some(5.0));
        assert!(r.solution.is_none(), "repair values carry no vector");
    }

    #[test]
    fn node_limit_degrades_to_feasible() {
        // A 12-binary knapsack with a 1-node budget cannot finish.
        let mut m = LpModel::new();
        let vars: Vec<_> = (0..12)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Binary))
            .collect();
        m.set_objective(vars.iter().map(|&v| (-1.0, v)).collect());
        m.add_constraint(
            "cap",
            vars.iter()
                .enumerate()
                .map(|(i, &v)| (1.0 + (i % 3) as f64, v))
                .collect(),
            Sense::Le,
            7.5,
        );
        let solver = MilpSolver::new(MilpLimits {
            node_limit: 1,
            lp_iteration_limit: 100_000,
        });
        let r = solver.solve(&m);
        assert!(!r.proven);
        assert!(matches!(
            r.status(),
            MilpStatus::LimitHit | MilpStatus::Feasible
        ));
    }

    #[test]
    fn pure_lp_model_solves_in_one_node() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, 4.0));
        m.set_objective(vec![(-2.0, x)]);
        let r = MilpSolver::default().solve(&m);
        assert_eq!(r.status(), MilpStatus::Optimal);
        assert!((r.objective.unwrap() + 8.0).abs() < 1e-6);
        assert_eq!(r.nodes, 1);
    }
}
