//! Bounded-variable two-phase revised primal simplex.
//!
//! Solves linear programs in the standard form produced by
//! [`LpModel::to_standard_form`](crate::model::LpModel::to_standard_form):
//! `min cᵀx` subject to `Ax = b`, `l ≤ x ≤ u` (finite lower bounds, possibly
//! infinite upper bounds). This is the LP-relaxation core underneath the
//! in-tree MILP solver ([`crate::milp`]); it is written for the model sizes
//! the exact backends produce (hundreds of rows), not for industrial scale:
//!
//! * **revised** iteration: the basis inverse `B⁻¹` is kept explicitly
//!   (dense, `m × m`) and updated by the product-form pivot; every
//!   `REFACTOR_EVERY` pivots it is recomputed from scratch (Gauss–Jordan
//!   with partial pivoting) and the basic values are replayed from the
//!   nonbasic ones, which keeps the accumulated drift bounded;
//! * **bounded variables**: nonbasic columns sit on their lower *or* upper
//!   bound, the ratio test allows the entering variable to flip to its other
//!   bound without a basis change;
//! * **phase 1** starts from an all-artificial basis minimising the total
//!   residual — a strictly positive optimum proves infeasibility;
//! * **anti-cycling**: pricing uses Dantzig's rule (most negative reduced
//!   cost) and falls back to Bland's rule — smallest eligible index, which
//!   provably terminates — whenever a run of degenerate pivots suggests
//!   cycling.

use crate::model::StandardForm;

/// Reduced-cost optimality tolerance.
const DJ_TOL: f64 = 1e-9;
/// Smallest pivot magnitude accepted in the ratio test.
const PIVOT_TOL: f64 = 1e-9;
/// Residual above which phase 1 declares the program infeasible.
const PHASE1_TOL: f64 = 1e-7;
/// Degenerate-pivot run length that triggers the switch to Bland's rule.
const BLAND_AFTER: u32 = 40;
/// Pivots between two from-scratch refactorisations of `B⁻¹`.
const REFACTOR_EVERY: u32 = 64;

/// Status of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// The constraints admit no solution within the bounds.
    Infeasible,
    /// The objective is unbounded below.
    Unbounded,
    /// The iteration budget ran out (or the basis went numerically
    /// singular); the result proves nothing.
    IterationLimit,
}

/// Result of an LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Outcome of the solve.
    pub status: LpStatus,
    /// Objective value (meaningful only for [`LpStatus::Optimal`]).
    pub objective: f64,
    /// Values of the *structural* columns (meaningful only for
    /// [`LpStatus::Optimal`]).
    pub x: Vec<f64>,
    /// Simplex iterations spent (both phases).
    pub iterations: u64,
}

/// Solves `min cᵀx, Ax = b, lower ≤ x ≤ upper` for the matrix and objective
/// of `sf`, with the bounds supplied separately so branch-and-bound nodes can
/// tighten them without copying the matrix. `lower`/`upper` must cover every
/// column of `sf` (structural first, then slacks).
pub fn solve_lp(
    sf: &StandardForm,
    lower: &[f64],
    upper: &[f64],
    max_iterations: u64,
) -> LpSolution {
    debug_assert_eq!(lower.len(), sf.n_cols());
    debug_assert_eq!(upper.len(), sf.n_cols());
    // Crossed bounds (possible when a caller derives bounds from an
    // incumbent-restricted horizon) mean an empty feasible region.
    if lower.iter().zip(upper).any(|(lo, hi)| lo > hi) {
        return LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::INFINITY,
            x: vec![0.0; sf.n_structural],
            iterations: 0,
        };
    }
    let mut t = Tableau::new(sf, lower, upper);
    let mut iterations = 0u64;

    // Phase 1: minimise the artificial residual.
    let phase1 = t.run_phase(true, max_iterations, &mut iterations);
    match phase1 {
        PhaseEnd::Optimal => {}
        // The phase-1 objective is bounded below by zero, so an "unbounded"
        // verdict can only be numerical noise: report it as inconclusive.
        PhaseEnd::Unbounded | PhaseEnd::Limit => {
            return t.bail(LpStatus::IterationLimit, iterations)
        }
    }
    if t.phase1_residual() > PHASE1_TOL {
        return t.bail(LpStatus::Infeasible, iterations);
    }
    t.enter_phase2();

    // Phase 2: minimise the real objective.
    match t.run_phase(false, max_iterations, &mut iterations) {
        PhaseEnd::Optimal => {
            let x = t.structural_values();
            let objective = sf
                .obj
                .iter()
                .zip(&x)
                .map(|(c, v)| c * v)
                .chain(std::iter::once(0.0))
                .sum();
            LpSolution {
                status: LpStatus::Optimal,
                objective,
                x,
                iterations,
            }
        }
        PhaseEnd::Unbounded => t.bail(LpStatus::Unbounded, iterations),
        PhaseEnd::Limit => t.bail(LpStatus::IterationLimit, iterations),
    }
}

enum PhaseEnd {
    Optimal,
    Unbounded,
    Limit,
}

/// Working state of a solve: the columns of `sf` plus one artificial column
/// per row (indices `n_cols..n_cols + m`).
struct Tableau<'a> {
    sf: &'a StandardForm,
    m: usize,
    n_real: usize,
    /// `±1` coefficient of each artificial (chosen so its start value ≥ 0).
    art_coeff: Vec<f64>,
    lower: Vec<f64>,
    upper: Vec<f64>,
    cost: Vec<f64>,
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    at_upper: Vec<bool>,
    xval: Vec<f64>,
    /// Dense `B⁻¹`, row-major `m × m`.
    binv: Vec<f64>,
    pivots_since_refactor: u32,
    degenerate_run: u32,
    singular: bool,
}

impl<'a> Tableau<'a> {
    fn new(sf: &'a StandardForm, lower: &[f64], upper: &[f64]) -> Self {
        let m = sf.n_rows;
        let n_real = sf.n_cols();
        let n = n_real + m;
        let mut lo = lower.to_vec();
        let mut hi = upper.to_vec();
        lo.resize(n, 0.0);
        hi.resize(n, f64::INFINITY);

        // Nonbasic structural/slack columns start on their lower bound
        // (always finite per StandardForm's contract).
        let mut xval = vec![0.0; n];
        let mut at_upper = vec![false; n];
        for j in 0..n_real {
            // A fixed column (lo == hi) or an inverted override from a
            // branch-and-bound node: sit on the lower bound.
            xval[j] = lo[j];
            at_upper[j] = false;
        }

        // Residual of each row under the nonbasic values; the artificial of
        // row i absorbs it with a ±1 coefficient so it starts non-negative.
        let mut residual = sf.rhs.clone();
        for (j, col) in sf.cols.iter().enumerate() {
            if xval[j] != 0.0 {
                for &(row, coeff) in col {
                    residual[row] -= coeff * xval[j];
                }
            }
        }
        let mut art_coeff = vec![1.0; m];
        let mut basis = Vec::with_capacity(m);
        let mut in_basis = vec![false; n];
        for (i, &r) in residual.iter().enumerate() {
            if r < 0.0 {
                art_coeff[i] = -1.0;
            }
            let j = n_real + i;
            xval[j] = r.abs();
            basis.push(j);
            in_basis[j] = true;
        }

        // Phase-1 costs: 1 per artificial.
        let mut cost = vec![0.0; n];
        for c in cost.iter_mut().skip(n_real) {
            *c = 1.0;
        }

        // B = diag(art_coeff) ⇒ B⁻¹ = diag(art_coeff).
        let mut binv = vec![0.0; m * m];
        for i in 0..m {
            binv[i * m + i] = art_coeff[i];
        }

        Tableau {
            sf,
            m,
            n_real,
            art_coeff,
            lower: lo,
            upper: hi,
            cost,
            basis,
            in_basis,
            at_upper,
            xval,
            binv,
            pivots_since_refactor: 0,
            degenerate_run: 0,
            singular: false,
        }
    }

    /// Sparse column `j` as `(row, coeff)` pairs (artificials synthesised).
    fn col(&self, j: usize) -> ColIter<'_> {
        if j < self.n_real {
            ColIter::Real(self.sf.cols[j].iter())
        } else {
            ColIter::Artificial(Some((j - self.n_real, self.art_coeff[j - self.n_real])))
        }
    }

    fn phase1_residual(&self) -> f64 {
        self.basis
            .iter()
            .filter(|&&j| j >= self.n_real)
            .map(|&j| self.xval[j])
            .sum::<f64>()
            .max(0.0)
    }

    /// Switches costs to the real objective and pins every artificial to 0.
    fn enter_phase2(&mut self) {
        for j in 0..self.n_real {
            self.cost[j] = self.sf.obj[j];
        }
        for j in self.n_real..self.n_real + self.m {
            self.cost[j] = 0.0;
            self.lower[j] = 0.0;
            self.upper[j] = 0.0;
            // Residual dust from phase 1 stays within the feasibility
            // tolerance; pin the recorded value so the ratio tests see a
            // consistent bound state.
            if !self.in_basis[j] {
                self.xval[j] = 0.0;
            }
        }
        self.degenerate_run = 0;
    }

    fn bail(&self, status: LpStatus, iterations: u64) -> LpSolution {
        LpSolution {
            status,
            objective: f64::INFINITY,
            x: self.structural_values(),
            iterations,
        }
    }

    fn structural_values(&self) -> Vec<f64> {
        self.xval[..self.sf.n_structural].to_vec()
    }

    /// Runs one simplex phase to optimality, unboundedness or the budget.
    fn run_phase(&mut self, phase1: bool, max_iterations: u64, iterations: &mut u64) -> PhaseEnd {
        loop {
            if *iterations >= max_iterations || self.singular {
                return PhaseEnd::Limit;
            }
            *iterations += 1;

            // Pricing: y = c_B B⁻¹, then reduced costs on demand.
            let y = self.duals();
            let bland = self.degenerate_run >= BLAND_AFTER;
            let mut entering: Option<(usize, f64)> = None; // (col, reduced cost)
            for j in 0..self.n_real + if phase1 { self.m } else { 0 } {
                if self.in_basis[j] || self.lower[j] == self.upper[j] {
                    continue;
                }
                let dj = self.reduced_cost(j, &y);
                let eligible = if self.at_upper[j] {
                    dj > DJ_TOL
                } else {
                    dj < -DJ_TOL
                };
                if !eligible {
                    continue;
                }
                if bland {
                    entering = Some((j, dj));
                    break;
                }
                match entering {
                    Some((_, best)) if dj.abs() <= best.abs() => {}
                    _ => entering = Some((j, dj)),
                }
            }
            let Some((q, _dq)) = entering else {
                return PhaseEnd::Optimal;
            };

            // Direction through the basis: w = B⁻¹ a_q.
            let w = self.ftran(q);
            // σ = +1 when entering rises off its lower bound, −1 when it
            // descends from its upper bound. Basic values move by −σ t w.
            let sigma = if self.at_upper[q] { -1.0 } else { 1.0 };

            let mut t_max = self.upper[q] - self.lower[q]; // bound flip
            let mut leave: Option<(usize, bool)> = None; // (basis pos, hits upper)
            for (i, &wi) in w.iter().enumerate() {
                let delta = sigma * wi;
                let k = self.basis[i];
                let (limit, hits_upper) = if delta > PIVOT_TOL {
                    ((self.xval[k] - self.lower[k]) / delta, false)
                } else if delta < -PIVOT_TOL {
                    if self.upper[k].is_infinite() {
                        continue;
                    }
                    ((self.xval[k] - self.upper[k]) / delta, true)
                } else {
                    continue;
                };
                let limit = limit.max(0.0);
                // Strictly tighter limits always win; under Bland's rule a
                // tie goes to the smaller variable index, which is the
                // anti-cycling half of the rule.
                let better = match leave {
                    None => limit < t_max,
                    Some((prev, _)) => {
                        limit < t_max - 1e-12
                            || (bland && limit <= t_max + 1e-12 && k < self.basis[prev])
                    }
                };
                if better {
                    t_max = t_max.min(limit);
                    leave = Some((i, hits_upper));
                }
            }

            if t_max.is_infinite() {
                return PhaseEnd::Unbounded;
            }
            let step = t_max.max(0.0);
            self.degenerate_run = if step <= 1e-12 {
                self.degenerate_run + 1
            } else {
                0
            };

            // Apply the move.
            for (i, &wi) in w.iter().enumerate() {
                let k = self.basis[i];
                self.xval[k] -= sigma * step * wi;
            }
            self.xval[q] += sigma * step;

            match leave {
                None => {
                    // Bound flip: x_q travelled to its other bound.
                    self.at_upper[q] = !self.at_upper[q];
                    self.xval[q] = if self.at_upper[q] {
                        self.upper[q]
                    } else {
                        self.lower[q]
                    };
                }
                Some((r, hits_upper)) => {
                    let k = self.basis[r];
                    self.xval[k] = if hits_upper {
                        self.upper[k]
                    } else {
                        self.lower[k]
                    };
                    self.at_upper[k] = hits_upper;
                    self.in_basis[k] = false;
                    self.in_basis[q] = true;
                    self.basis[r] = q;
                    self.update_binv(r, &w);
                    self.pivots_since_refactor += 1;
                    if self.pivots_since_refactor >= REFACTOR_EVERY {
                        self.refactor();
                    }
                }
            }
        }
    }

    /// `y = c_Bᵀ B⁻¹`.
    fn duals(&self) -> Vec<f64> {
        let m = self.m;
        let mut y = vec![0.0; m];
        for (i, &k) in self.basis.iter().enumerate() {
            let cb = self.cost[k];
            if cb != 0.0 {
                let row = &self.binv[i * m..(i + 1) * m];
                for (yj, &b) in y.iter_mut().zip(row) {
                    *yj += cb * b;
                }
            }
        }
        y
    }

    fn reduced_cost(&self, j: usize, y: &[f64]) -> f64 {
        let mut dj = self.cost[j];
        for (row, coeff) in self.col(j) {
            dj -= y[row] * coeff;
        }
        dj
    }

    /// `w = B⁻¹ a_j` (dense result).
    fn ftran(&self, j: usize) -> Vec<f64> {
        let m = self.m;
        let mut w = vec![0.0; m];
        for (row, coeff) in self.col(j) {
            if coeff != 0.0 {
                for (i, wi) in w.iter_mut().enumerate() {
                    *wi += self.binv[i * m + row] * coeff;
                }
            }
        }
        w
    }

    /// Product-form update of `B⁻¹` after replacing basis position `r`,
    /// where `w = B⁻¹ a_q` is the direction used for the pivot.
    fn update_binv(&mut self, r: usize, w: &[f64]) {
        let m = self.m;
        let pivot = w[r];
        if pivot.abs() < PIVOT_TOL {
            self.singular = true;
            return;
        }
        let inv = 1.0 / pivot;
        for j in 0..m {
            self.binv[r * m + j] *= inv;
        }
        for (i, &factor) in w.iter().enumerate() {
            if i == r {
                continue;
            }
            if factor != 0.0 {
                for j in 0..m {
                    self.binv[i * m + j] -= factor * self.binv[r * m + j];
                }
            }
        }
    }

    /// Recomputes `B⁻¹` by Gauss–Jordan elimination with partial pivoting and
    /// replays the basic values from the nonbasic ones.
    fn refactor(&mut self) {
        self.pivots_since_refactor = 0;
        let m = self.m;
        if m == 0 {
            return;
        }
        // Build the dense basis matrix.
        let mut a = vec![0.0; m * m];
        for (i, &k) in self.basis.iter().enumerate() {
            for (row, coeff) in self.col(k) {
                // `+=` so duplicate (row, var) terms in a constraint merge.
                a[row * m + i] += coeff;
            }
        }
        let mut inv = vec![0.0; m * m];
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for col in 0..m {
            // Partial pivot.
            let mut best = col;
            for row in col + 1..m {
                if a[row * m + col].abs() > a[best * m + col].abs() {
                    best = row;
                }
            }
            if a[best * m + col].abs() < 1e-12 {
                self.singular = true;
                return;
            }
            if best != col {
                for j in 0..m {
                    a.swap(col * m + j, best * m + j);
                    inv.swap(col * m + j, best * m + j);
                }
            }
            let p = a[col * m + col];
            let pinv = 1.0 / p;
            for j in 0..m {
                a[col * m + j] *= pinv;
                inv[col * m + j] *= pinv;
            }
            for row in 0..m {
                if row == col {
                    continue;
                }
                let f = a[row * m + col];
                if f != 0.0 {
                    for j in 0..m {
                        a[row * m + j] -= f * a[col * m + j];
                        inv[row * m + j] -= f * inv[col * m + j];
                    }
                }
            }
        }
        self.binv = inv;

        // Replay basic values: x_B = B⁻¹ (b − N x_N).
        let mut resid = self.sf.rhs.clone();
        for j in 0..self.n_real + self.m {
            if self.in_basis[j] || self.xval[j] == 0.0 {
                continue;
            }
            for (row, coeff) in self.col(j) {
                resid[row] -= coeff * self.xval[j];
            }
        }
        for i in 0..m {
            let mut v = 0.0;
            for (j, &r) in resid.iter().enumerate() {
                v += self.binv[i * m + j] * r;
            }
            self.xval[self.basis[i]] = v;
        }
    }
}

/// Iterator over the sparse entries of a (possibly artificial) column.
enum ColIter<'a> {
    Real(std::slice::Iter<'a, (usize, f64)>),
    Artificial(Option<(usize, f64)>),
}

impl Iterator for ColIter<'_> {
    type Item = (usize, f64);
    fn next(&mut self) -> Option<(usize, f64)> {
        match self {
            ColIter::Real(it) => it.next().copied(),
            ColIter::Artificial(slot) => slot.take(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LpModel, Sense, VarKind};

    fn solve(model: &LpModel) -> LpSolution {
        let sf = model.to_standard_form();
        solve_lp(&sf, &sf.lower, &sf.upper, 100_000)
    }

    #[test]
    fn two_variable_optimum() {
        // min −3x − 5y  s.t.  x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  (x, y ≥ 0).
        // Classic optimum: x = 2, y = 6, objective −36.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, f64::INFINITY));
        let y = m.add_var("y", VarKind::Continuous(0.0, f64::INFINITY));
        m.set_objective(vec![(-3.0, x), (-5.0, y)]);
        m.add_constraint("c1", vec![(1.0, x)], Sense::Le, 4.0);
        m.add_constraint("c2", vec![(2.0, y)], Sense::Le, 12.0);
        m.add_constraint("c3", vec![(3.0, x), (2.0, y)], Sense::Le, 18.0);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 36.0).abs() < 1e-7, "{}", s.objective);
        assert!((s.x[0] - 2.0).abs() < 1e-7);
        assert!((s.x[1] - 6.0).abs() < 1e-7);
    }

    #[test]
    fn equality_and_ge_rows() {
        // min x + y  s.t.  x + y = 10, x − y ≥ 2  ⇒  x = 6, y = 4? No:
        // any point on x + y = 10 has objective 10; check feasibility only.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, f64::INFINITY));
        let y = m.add_var("y", VarKind::Continuous(0.0, f64::INFINITY));
        m.set_objective(vec![(1.0, x), (1.0, y)]);
        m.add_constraint("sum", vec![(1.0, x), (1.0, y)], Sense::Eq, 10.0);
        m.add_constraint("gap", vec![(1.0, x), (-1.0, y)], Sense::Ge, 2.0);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - 10.0).abs() < 1e-7);
        assert!(s.x[0] - s.x[1] >= 2.0 - 1e-7);
        assert!((s.x[0] + s.x[1] - 10.0).abs() < 1e-7);
    }

    #[test]
    fn infeasible_program_detected() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, 1.0));
        m.add_constraint("imp", vec![(1.0, x)], Sense::Ge, 2.0);
        assert_eq!(solve(&m).status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_program_detected() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, f64::INFINITY));
        let y = m.add_var("y", VarKind::Continuous(0.0, f64::INFINITY));
        m.set_objective(vec![(-1.0, x)]);
        // x unconstrained above except through y, which is also free to grow.
        m.add_constraint("c", vec![(1.0, x), (-1.0, y)], Sense::Le, 1.0);
        assert_eq!(solve(&m).status, LpStatus::Unbounded);
    }

    #[test]
    fn pure_bound_flip_without_rows() {
        // min −x with x ∈ [0, 5] and no constraints: optimum by bound flip.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, 5.0));
        m.set_objective(vec![(-1.0, x)]);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 5.0).abs() < 1e-9);
        assert!((s.x[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x with x ∈ [−3, 7], x ≥ −1 via a row.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(-3.0, 7.0));
        m.set_objective(vec![(1.0, x)]);
        m.add_constraint("floor", vec![(1.0, x)], Sense::Ge, -1.0);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] + 1.0).abs() < 1e-7, "{}", s.x[0]);
    }

    #[test]
    fn degenerate_program_terminates() {
        // Highly degenerate: many redundant rows pinning the same vertex.
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, f64::INFINITY));
        let y = m.add_var("y", VarKind::Continuous(0.0, f64::INFINITY));
        m.set_objective(vec![(-1.0, x), (-1.0, y)]);
        for i in 0..8 {
            m.add_constraint(format!("r{i}"), vec![(1.0, x), (1.0, y)], Sense::Le, 1.0);
        }
        m.add_constraint("cap", vec![(1.0, x)], Sense::Le, 1.0);
        let s = solve(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective + 1.0).abs() < 1e-7);
    }

    #[test]
    fn bound_overrides_without_matrix_rebuild() {
        // The same StandardForm solved under tightened bounds (the B&B
        // branching pattern): min −x − y, x + y ≤ 3, x,y ∈ [0, 2].
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, 2.0));
        let y = m.add_var("y", VarKind::Continuous(0.0, 2.0));
        m.set_objective(vec![(-1.0, x), (-1.0, y)]);
        m.add_constraint("cap", vec![(1.0, x), (1.0, y)], Sense::Le, 3.0);
        let sf = m.to_standard_form();
        let base = solve_lp(&sf, &sf.lower, &sf.upper, 10_000);
        assert!((base.objective + 3.0).abs() < 1e-7);
        // Fix x = 0 by override.
        let mut lo = sf.lower.clone();
        let mut hi = sf.upper.clone();
        hi[0] = 0.0;
        let fixed = solve_lp(&sf, &lo, &hi, 10_000);
        assert!((fixed.objective + 2.0).abs() < 1e-7);
        // Force x ≥ 1.5 by override.
        lo[0] = 1.5;
        hi[0] = 2.0;
        let forced = solve_lp(&sf, &lo, &hi, 10_000);
        assert!((forced.objective + 3.0).abs() < 1e-7);
        assert!(forced.x[0] >= 1.5 - 1e-9);
    }

    #[test]
    fn iteration_limit_reported() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, f64::INFINITY));
        let y = m.add_var("y", VarKind::Continuous(0.0, f64::INFINITY));
        m.set_objective(vec![(-1.0, x), (-2.0, y)]);
        m.add_constraint("c1", vec![(1.0, x), (1.0, y)], Sense::Le, 10.0);
        m.add_constraint("c2", vec![(1.0, x), (3.0, y)], Sense::Le, 15.0);
        let sf = m.to_standard_form();
        let s = solve_lp(&sf, &sf.lower, &sf.upper, 1);
        assert_eq!(s.status, LpStatus::IterationLimit);
    }
}
