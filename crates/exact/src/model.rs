//! A small in-memory representation of mixed-integer linear programs.
//!
//! Enough structure to materialise the paper's ILP (Section 4), count its
//! variables and constraints, export it in the CPLEX LP text format, and —
//! since the workspace now ships its own solver — convert any model to the
//! bounded standard form `min cᵀx  s.t.  Ax = b, l ≤ x ≤ u` consumed by
//! [`crate::simplex`] and [`crate::milp`].

/// Identifier of a variable inside an [`LpModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// Index of the variable in the model's arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The kind (and implicit bounds) of a variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarKind {
    /// Continuous variable with the given `[lower, upper]` bounds
    /// (`f64::INFINITY` for unbounded above).
    Continuous(f64, f64),
    /// Binary 0/1 variable.
    Binary,
    /// General integer variable with the given inclusive bounds.
    Integer(i64, i64),
}

impl VarKind {
    /// The `[lower, upper]` bounds implied by the kind.
    pub fn bounds(self) -> (f64, f64) {
        match self {
            VarKind::Continuous(lo, hi) => (lo, hi),
            VarKind::Binary => (0.0, 1.0),
            VarKind::Integer(lo, hi) => (lo as f64, hi as f64),
        }
    }

    /// Returns `true` for variables with an integrality requirement.
    pub fn is_integer(self) -> bool {
        matches!(self, VarKind::Binary | VarKind::Integer(_, _))
    }
}

/// Direction of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    /// `Σ aᵢ·xᵢ ≤ rhs`
    Le,
    /// `Σ aᵢ·xᵢ ≥ rhs`
    Ge,
    /// `Σ aᵢ·xᵢ = rhs`
    Eq,
}

/// A variable of the model.
#[derive(Debug, Clone, PartialEq)]
pub struct Variable {
    /// Name used in the LP export (must be unique).
    pub name: String,
    /// Kind and bounds.
    pub kind: VarKind,
}

/// A linear constraint `Σ coeff·var  (≤ | ≥ | =)  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Name used in the LP export.
    pub name: String,
    /// Left-hand-side terms (coefficient, variable).
    pub terms: Vec<(f64, VarId)>,
    /// Direction.
    pub sense: Sense,
    /// Right-hand side.
    pub rhs: f64,
}

/// A mixed-integer linear program with a single minimisation objective.
#[derive(Debug, Clone, Default)]
pub struct LpModel {
    variables: Vec<Variable>,
    constraints: Vec<Constraint>,
    objective: Vec<(f64, VarId)>,
}

impl LpModel {
    /// Creates an empty model.
    pub fn new() -> Self {
        LpModel::default()
    }

    /// Adds a variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind) -> VarId {
        let id = VarId(u32::try_from(self.variables.len()).expect("too many variables"));
        self.variables.push(Variable {
            name: name.into(),
            kind,
        });
        id
    }

    /// Adds a constraint. Zero-coefficient terms are dropped.
    pub fn add_constraint(
        &mut self,
        name: impl Into<String>,
        terms: Vec<(f64, VarId)>,
        sense: Sense,
        rhs: f64,
    ) {
        let terms: Vec<(f64, VarId)> = terms.into_iter().filter(|(c, _)| *c != 0.0).collect();
        self.constraints.push(Constraint {
            name: name.into(),
            terms,
            sense,
            rhs,
        });
    }

    /// Sets the (minimisation) objective.
    pub fn set_objective(&mut self, terms: Vec<(f64, VarId)>) {
        self.objective = terms;
    }

    /// Number of variables.
    pub fn n_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Number of binary variables.
    pub fn n_binaries(&self) -> usize {
        self.variables
            .iter()
            .filter(|v| v.kind == VarKind::Binary)
            .count()
    }

    /// Accessor used by tests.
    pub fn variable(&self, id: VarId) -> &Variable {
        &self.variables[id.index()]
    }

    /// Iterates over the constraints.
    pub fn constraints(&self) -> impl Iterator<Item = &Constraint> {
        self.constraints.iter()
    }

    /// Looks a variable up by name (linear scan; for tests and small tools).
    pub fn find_variable(&self, name: &str) -> Option<VarId> {
        self.variables
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u32))
    }

    /// Iterates over the variables in id order.
    pub fn variables(&self) -> impl Iterator<Item = &Variable> {
        self.variables.iter()
    }

    /// The (minimisation) objective terms.
    pub fn objective(&self) -> &[(f64, VarId)] {
        &self.objective
    }

    /// Ids of every variable with an integrality requirement, in id order.
    pub fn integer_var_ids(&self) -> Vec<VarId> {
        self.variables
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind.is_integer())
            .map(|(i, _)| VarId(i as u32))
            .collect()
    }

    /// Converts the model to the bounded standard form `min cᵀx` subject to
    /// `Ax = b`, `l ≤ x ≤ u`.
    ///
    /// The first [`LpModel::n_variables`] columns mirror the model variables
    /// in id order; every `≤` / `≥` constraint contributes one extra slack
    /// column. Equality rows carry no slack.
    ///
    /// # Panics
    /// Panics if any variable has an infinite *lower* bound: the simplex
    /// implementation keeps every nonbasic variable on a finite bound, and no
    /// model built in this workspace needs free variables.
    pub fn to_standard_form(&self) -> StandardForm {
        let n_structural = self.variables.len();
        let n_rows = self.constraints.len();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_structural];
        let mut obj = vec![0.0; n_structural];
        let mut lower = Vec::with_capacity(n_structural + n_rows);
        let mut upper = Vec::with_capacity(n_structural + n_rows);
        let mut is_integer = Vec::with_capacity(n_structural + n_rows);
        for v in &self.variables {
            let (lo, hi) = v.kind.bounds();
            assert!(
                lo.is_finite(),
                "standard form requires a finite lower bound on `{}`",
                v.name
            );
            lower.push(lo);
            upper.push(hi);
            is_integer.push(v.kind.is_integer());
        }
        for (coeff, var) in &self.objective {
            obj[var.index()] += *coeff;
        }
        let mut rhs = Vec::with_capacity(n_rows);
        for (row, c) in self.constraints.iter().enumerate() {
            for (coeff, var) in &c.terms {
                cols[var.index()].push((row, *coeff));
            }
            rhs.push(c.rhs);
            // One slack per inequality row: `a·x + s = b` with `s ≥ 0` for
            // `≤`, `a·x − s = b` with `s ≥ 0` for `≥`.
            let slack_coeff = match c.sense {
                Sense::Le => Some(1.0),
                Sense::Ge => Some(-1.0),
                Sense::Eq => None,
            };
            if let Some(coeff) = slack_coeff {
                cols.push(vec![(row, coeff)]);
                obj.push(0.0);
                lower.push(0.0);
                upper.push(f64::INFINITY);
                is_integer.push(false);
            }
        }
        StandardForm {
            n_structural,
            n_rows,
            cols,
            obj,
            rhs,
            lower,
            upper,
            is_integer,
        }
    }

    /// Exports the model in CPLEX LP text format.
    pub fn to_lp_format(&self) -> String {
        let mut out = String::with_capacity(64 * (self.constraints.len() + self.variables.len()));
        out.push_str("\\ Generated by mals-exact (memory-aware list scheduling ILP)\n");
        out.push_str("Minimize\n obj:");
        if self.objective.is_empty() {
            out.push_str(" 0");
        } else {
            for (coeff, var) in &self.objective {
                push_term(&mut out, *coeff, &self.variables[var.index()].name);
            }
        }
        out.push_str("\nSubject To\n");
        for c in &self.constraints {
            out.push_str(&format!(" {}:", c.name));
            if c.terms.is_empty() {
                out.push_str(" 0");
            }
            for (coeff, var) in &c.terms {
                push_term(&mut out, *coeff, &self.variables[var.index()].name);
            }
            let op = match c.sense {
                Sense::Le => "<=",
                Sense::Ge => ">=",
                Sense::Eq => "=",
            };
            out.push_str(&format!(" {op} {}\n", fmt_num(c.rhs)));
        }
        out.push_str("Bounds\n");
        for v in &self.variables {
            match v.kind {
                VarKind::Continuous(lo, hi) => {
                    if hi.is_infinite() {
                        out.push_str(&format!(" {} <= {} <= +inf\n", fmt_num(lo), v.name));
                    } else {
                        out.push_str(&format!(
                            " {} <= {} <= {}\n",
                            fmt_num(lo),
                            v.name,
                            fmt_num(hi)
                        ));
                    }
                }
                VarKind::Integer(lo, hi) => {
                    out.push_str(&format!(" {lo} <= {} <= {hi}\n", v.name));
                }
                VarKind::Binary => {}
            }
        }
        let binaries: Vec<&str> = self
            .variables
            .iter()
            .filter(|v| v.kind == VarKind::Binary)
            .map(|v| v.name.as_str())
            .collect();
        if !binaries.is_empty() {
            out.push_str("Binaries\n");
            for chunk in binaries.chunks(10) {
                out.push(' ');
                out.push_str(&chunk.join(" "));
                out.push('\n');
            }
        }
        let generals: Vec<&str> = self
            .variables
            .iter()
            .filter(|v| matches!(v.kind, VarKind::Integer(_, _)))
            .map(|v| v.name.as_str())
            .collect();
        if !generals.is_empty() {
            out.push_str("Generals\n");
            for chunk in generals.chunks(10) {
                out.push(' ');
                out.push_str(&chunk.join(" "));
                out.push('\n');
            }
        }
        out.push_str("End\n");
        out
    }
}

/// A model in the bounded standard form `min cᵀx  s.t.  Ax = b, l ≤ x ≤ u`,
/// produced by [`LpModel::to_standard_form`] and consumed by the in-tree
/// simplex / MILP solvers.
///
/// The matrix is stored column-wise and sparse; the first
/// [`StandardForm::n_structural`] columns correspond one-to-one to the model
/// variables, followed by one slack column per inequality row.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Number of leading columns that mirror the model's variables.
    pub n_structural: usize,
    /// Number of rows of `A` (= constraints of the model).
    pub n_rows: usize,
    /// Sparse columns of `A`: `(row, coefficient)` pairs.
    pub cols: Vec<Vec<(usize, f64)>>,
    /// Dense objective over all columns (slacks cost 0).
    pub obj: Vec<f64>,
    /// Right-hand side `b`.
    pub rhs: Vec<f64>,
    /// Lower bounds `l` (always finite).
    pub lower: Vec<f64>,
    /// Upper bounds `u` (`f64::INFINITY` when unbounded above).
    pub upper: Vec<f64>,
    /// Integrality marker per column (slacks are continuous).
    pub is_integer: Vec<bool>,
}

impl StandardForm {
    /// Total number of columns (structural + slacks).
    pub fn n_cols(&self) -> usize {
        self.cols.len()
    }
}

fn push_term(out: &mut String, coeff: f64, name: &str) {
    if coeff >= 0.0 {
        out.push_str(&format!(" + {} {}", fmt_num(coeff), name));
    } else {
        out.push_str(&format!(" - {} {}", fmt_num(-coeff), name));
    }
}

/// Formats a number for the LP export: integral values print as integers,
/// everything else uses the `{:?}` float formatter — the shortest decimal
/// representation that parses back to exactly the same `f64` (switching to
/// exponent notation for extreme magnitudes). Rust's float formatting never
/// consults the process locale, so the emitted text is byte-identical across
/// runs and machines.
fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_count() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, f64::INFINITY));
        let y = m.add_var("y", VarKind::Binary);
        let z = m.add_var("z", VarKind::Integer(0, 5));
        m.set_objective(vec![(1.0, x)]);
        m.add_constraint("c1", vec![(1.0, x), (2.0, y)], Sense::Le, 10.0);
        m.add_constraint("c2", vec![(1.0, z), (0.0, x)], Sense::Ge, 1.0);
        assert_eq!(m.n_variables(), 3);
        assert_eq!(m.n_constraints(), 2);
        assert_eq!(m.n_binaries(), 1);
        // Zero-coefficient term dropped.
        assert_eq!(m.constraints().nth(1).unwrap().terms.len(), 1);
        assert_eq!(m.find_variable("y"), Some(y));
        assert_eq!(m.find_variable("nope"), None);
        assert_eq!(m.variable(x).name, "x");
    }

    #[test]
    fn lp_format_structure() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, 100.0));
        let y = m.add_var("y", VarKind::Binary);
        let z = m.add_var("z", VarKind::Integer(1, 4));
        m.set_objective(vec![(1.0, x)]);
        m.add_constraint("cap", vec![(1.0, x), (-3.5, y)], Sense::Le, 7.0);
        m.add_constraint("fix", vec![(1.0, z)], Sense::Eq, 2.0);
        let lp = m.to_lp_format();
        assert!(lp.starts_with("\\ Generated"));
        assert!(lp.contains("Minimize"));
        assert!(lp.contains("obj: + 1 x"));
        assert!(lp.contains("cap: + 1 x - 3.5 y <= 7"));
        assert!(lp.contains("fix: + 1 z = 2"));
        assert!(lp.contains("Bounds"));
        assert!(lp.contains("0 <= x <= 100"));
        assert!(lp.contains("1 <= z <= 4"));
        assert!(lp.contains("Binaries\n y"));
        assert!(lp.contains("Generals\n z"));
        assert!(lp.trim_end().ends_with("End"));
    }

    #[test]
    fn empty_model_exports() {
        let m = LpModel::new();
        let lp = m.to_lp_format();
        assert!(lp.contains("obj: 0"));
        assert!(lp.contains("End"));
    }

    #[test]
    fn float_formatting_round_trips_exactly() {
        // Every non-integral coefficient must be printed with the shortest
        // representation that parses back to the identical f64.
        for x in [
            0.1 + 0.2,
            1.0 / 3.0,
            -7.25e-9,
            1e300,
            123_456_789.000_000_12,
            f64::MAX,
        ] {
            let s = fmt_num(x);
            assert_eq!(s.parse::<f64>().unwrap(), x, "`{s}` did not round-trip");
            assert!(!s.contains(','), "locale-style separator in `{s}`");
        }
        // Integral values keep the compact integer form.
        assert_eq!(fmt_num(7.0), "7");
        assert_eq!(fmt_num(-3.0), "-3");
        assert_eq!(fmt_num(0.0), "0");
    }

    #[test]
    fn lp_export_is_byte_stable_across_runs() {
        let build = || {
            let mut m = LpModel::new();
            let x = m.add_var("x", VarKind::Continuous(0.0, f64::INFINITY));
            let y = m.add_var("y", VarKind::Binary);
            let z = m.add_var("z", VarKind::Integer(-2, 9));
            m.set_objective(vec![(0.1 + 0.2, x), (1.0 / 3.0, y)]);
            m.add_constraint("c1", vec![(1e-9, x), (-2.5, y), (1.0, z)], Sense::Le, 0.3);
            m.add_constraint("c2", vec![(7.0, x)], Sense::Ge, -1.0 / 7.0);
            m.to_lp_format()
        };
        let first = build();
        let second = build();
        assert_eq!(first.as_bytes(), second.as_bytes());
        // The tricky coefficients appear in round-trip-exact form.
        assert!(first.contains("0.30000000000000004"), "{first}");
        assert!(first.contains("0.3333333333333333"), "{first}");
        assert!(first.contains("1e-9"), "{first}");
    }

    #[test]
    fn standard_form_conversion() {
        let mut m = LpModel::new();
        let x = m.add_var("x", VarKind::Continuous(0.0, 10.0));
        let y = m.add_var("y", VarKind::Binary);
        let z = m.add_var("z", VarKind::Integer(1, 4));
        m.set_objective(vec![(2.0, x), (-1.0, z)]);
        m.add_constraint("le", vec![(1.0, x), (3.0, y)], Sense::Le, 5.0);
        m.add_constraint("ge", vec![(1.0, x), (1.0, z)], Sense::Ge, 2.0);
        m.add_constraint("eq", vec![(1.0, y), (1.0, z)], Sense::Eq, 3.0);
        let sf = m.to_standard_form();
        assert_eq!(sf.n_structural, 3);
        assert_eq!(sf.n_rows, 3);
        // Two slacks: one for the ≤ row (+1), one for the ≥ row (−1).
        assert_eq!(sf.n_cols(), 5);
        assert_eq!(sf.cols[3], vec![(0, 1.0)]);
        assert_eq!(sf.cols[4], vec![(1, -1.0)]);
        assert_eq!(sf.obj, vec![2.0, 0.0, -1.0, 0.0, 0.0]);
        assert_eq!(sf.rhs, vec![5.0, 2.0, 3.0]);
        assert_eq!(sf.lower, vec![0.0, 0.0, 1.0, 0.0, 0.0]);
        assert_eq!(sf.upper[1], 1.0);
        assert!(sf.upper[3].is_infinite());
        assert_eq!(sf.is_integer, vec![false, true, true, false, false]);
        // Kind helpers.
        assert_eq!(VarKind::Binary.bounds(), (0.0, 1.0));
        assert!(VarKind::Integer(0, 3).is_integer());
        assert!(!VarKind::Continuous(0.0, 1.0).is_integer());
        assert_eq!(m.integer_var_ids(), vec![y, z]);
        assert_eq!(m.objective().len(), 2);
        assert_eq!(m.variables().count(), 3);
    }

    #[test]
    #[should_panic(expected = "finite lower bound")]
    fn standard_form_rejects_free_variables() {
        let mut m = LpModel::new();
        m.add_var("free", VarKind::Continuous(f64::NEG_INFINITY, 0.0));
        let _ = m.to_standard_form();
    }
}
