//! Construction of the paper's ILP (Section 4, Figures 5–7).
//!
//! The program decides, for every task, its starting time and processor, and
//! for every edge the starting time of its (potential) cross-memory transfer;
//! a large family of auxiliary binary variables encodes the relative order of
//! every pair of events so that the memory occupied at the start of every
//! task and every transfer can be written as a linear expression.
//!
//! The builder follows the paper constraint by constraint:
//!
//! * (1)–(25): schedule well-formedness (makespan definition, flow and
//!   transfer precedence, big-M definitions of the ordering indicators,
//!   processor/memory consistency, resource exclusion);
//! * (26)/(27) with (26a)–(27d): the memory-capacity constraints at the start
//!   of every task and every transfer, linearised with the auxiliary
//!   `α`/`β` products exactly as in Figure 7.
//!
//! Two small, documented adaptations are made:
//!
//! * processors are 0-based (`0..P1` blue, `P1..P1+P2` red), so constraints
//!   (12)–(13) use the 0-based form;
//! * the self-referential terms of (26)/(27) — the input and output files of
//!   the very task (or transfer) whose memory is being bounded, for which the
//!   paper's `δ_{ii}`-style indicators are undefined — are added as constant
//!   contributions to the left-hand side, which is exactly their value in any
//!   feasible schedule (a task's own inputs and outputs are, by definition of
//!   `MemReq`, resident when it starts).
//!
//! The resulting model has `O(m² + mn)` variables and constraints, as stated
//! in the paper. It can be exported in CPLEX LP format with
//! [`crate::model::LpModel::to_lp_format`]; the workspace does not bundle a
//! MILP solver (the paper used CPLEX 12.5), the optimal makespans used in the
//! experiment reproduction come from [`crate::bb::BranchAndBound`] instead.

use crate::model::{LpModel, Sense, VarId, VarKind};
use mals_dag::{EdgeId, TaskGraph, TaskId};
use mals_platform::Platform;

/// Summary statistics of a generated ILP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IlpStats {
    /// Total number of variables.
    pub n_variables: usize,
    /// Number of binary variables.
    pub n_binaries: usize,
    /// Total number of constraints.
    pub n_constraints: usize,
}

/// Either a model variable or a constant (used for the `δ`-style indicators
/// whose self-referential instances are constants).
#[derive(Debug, Clone, Copy)]
enum Ind {
    Var(VarId),
    Const(f64),
}

struct Builder<'a> {
    graph: &'a TaskGraph,
    platform: &'a Platform,
    model: LpModel,
    m_max: f64,
    makespan: VarId,
    t: Vec<VarId>,
    tau: Vec<VarId>,
    p: Vec<VarId>,
    b: Vec<VarId>,
    w: Vec<VarId>,
    eps: Vec<Vec<Option<VarId>>>,
    delta: Vec<Vec<Option<VarId>>>,
    sigma: Vec<Vec<Option<VarId>>>,
    m_ord: Vec<Vec<Option<VarId>>>,
    m_prime: Vec<Vec<VarId>>,         // [edge][task]
    sigma_prime: Vec<Vec<VarId>>,     // [edge][task]
    c_ind: Vec<Vec<VarId>>,           // [edge][task]
    d_ind: Vec<Vec<VarId>>,           // [edge][task]
    c_prime: Vec<Vec<Option<VarId>>>, // [edge][edge]
    d_prime: Vec<Vec<Option<VarId>>>, // [edge][edge]
}

impl<'a> Builder<'a> {
    fn new(graph: &'a TaskGraph, platform: &'a Platform) -> Self {
        let mut model = LpModel::new();
        let n = graph.n_tasks();
        let m = graph.n_edges();
        let m_max = graph.makespan_horizon();
        let total_procs = platform.n_procs() as i64;

        let makespan = model.add_var("M", VarKind::Continuous(0.0, f64::INFINITY));
        let t: Vec<VarId> = (0..n)
            .map(|i| model.add_var(format!("t_{i}"), VarKind::Continuous(0.0, f64::INFINITY)))
            .collect();
        let tau: Vec<VarId> = (0..m)
            .map(|e| {
                let edge = graph.edge(EdgeId::from_index(e));
                model.add_var(
                    format!("tau_{}_{}", edge.src.index(), edge.dst.index()),
                    VarKind::Continuous(0.0, f64::INFINITY),
                )
            })
            .collect();
        let p: Vec<VarId> = (0..n)
            .map(|i| model.add_var(format!("p_{i}"), VarKind::Integer(0, total_procs - 1)))
            .collect();
        let b: Vec<VarId> = (0..n)
            .map(|i| model.add_var(format!("b_{i}"), VarKind::Binary))
            .collect();
        let w: Vec<VarId> = (0..n)
            .map(|i| model.add_var(format!("w_{i}"), VarKind::Continuous(0.0, f64::INFINITY)))
            .collect();

        let pair_vars = |model: &mut LpModel, prefix: &str| -> Vec<Vec<Option<VarId>>> {
            (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| {
                            (i != j).then(|| {
                                model.add_var(format!("{prefix}_{i}_{j}"), VarKind::Binary)
                            })
                        })
                        .collect()
                })
                .collect()
        };
        let eps = pair_vars(&mut model, "eps");
        let delta = pair_vars(&mut model, "delta");
        let sigma = pair_vars(&mut model, "sigma");
        let m_ord = pair_vars(&mut model, "m");

        let edge_task_vars = |model: &mut LpModel, prefix: &str| -> Vec<Vec<VarId>> {
            (0..m)
                .map(|e| {
                    (0..n)
                        .map(|k| model.add_var(format!("{prefix}_{e}_{k}"), VarKind::Binary))
                        .collect()
                })
                .collect()
        };
        let m_prime = edge_task_vars(&mut model, "mp");
        let sigma_prime = edge_task_vars(&mut model, "sp");
        let c_ind = edge_task_vars(&mut model, "c");
        let d_ind = edge_task_vars(&mut model, "d");

        let edge_edge_vars = |model: &mut LpModel, prefix: &str| -> Vec<Vec<Option<VarId>>> {
            (0..m)
                .map(|e| {
                    (0..m)
                        .map(|f| {
                            (e != f).then(|| {
                                model.add_var(format!("{prefix}_{e}_{f}"), VarKind::Binary)
                            })
                        })
                        .collect()
                })
                .collect()
        };
        let c_prime = edge_edge_vars(&mut model, "cp");
        let d_prime = edge_edge_vars(&mut model, "dp");

        Builder {
            graph,
            platform,
            model,
            m_max,
            makespan,
            t,
            tau,
            p,
            b,
            w,
            eps,
            delta,
            sigma,
            m_ord,
            m_prime,
            sigma_prime,
            c_ind,
            d_ind,
            c_prime,
            d_prime,
        }
    }

    fn delta_ind(&self, i: usize, j: usize) -> Ind {
        if i == j {
            Ind::Const(1.0)
        } else {
            Ind::Var(self.delta[i][j].expect("delta exists for distinct pair"))
        }
    }

    /// Adds a `lhs_terms (sense) rhs` constraint where some terms may be
    /// constant indicators (folded into the right-hand side).
    fn add_ind_constraint(
        &mut self,
        name: String,
        terms: Vec<(f64, Ind)>,
        sense: Sense,
        mut rhs: f64,
    ) {
        let mut var_terms = Vec::with_capacity(terms.len());
        for (coeff, ind) in terms {
            match ind {
                Ind::Var(v) => var_terms.push((coeff, v)),
                Ind::Const(c) => rhs -= coeff * c,
            }
        }
        self.model.add_constraint(name, var_terms, sense, rhs);
    }

    fn build(mut self) -> LpModel {
        let n = self.graph.n_tasks();
        let m = self.graph.n_edges();
        let m_max = self.m_max;
        let p1 = self.platform.blue_procs as f64;
        let p2 = self.platform.red_procs as f64;
        let total_procs = p1 + p2;
        let m_blue = self.platform.mem_blue;
        let m_red = self.platform.mem_red;

        self.model.set_objective(vec![(1.0, self.makespan)]);

        // (1) t_i + w_i <= M
        for i in 0..n {
            self.model.add_constraint(
                format!("c1_{i}"),
                vec![(1.0, self.t[i]), (1.0, self.w[i]), (-1.0, self.makespan)],
                Sense::Le,
                0.0,
            );
        }

        // (2) t_i + w_i <= tau_ij ; (3) tau_ij + (1 - delta_ij) C_ij <= t_j
        for e in 0..m {
            let edge = self.graph.edge(EdgeId::from_index(e));
            let (i, j) = (edge.src.index(), edge.dst.index());
            self.model.add_constraint(
                format!("c2_{e}"),
                vec![(1.0, self.t[i]), (1.0, self.w[i]), (-1.0, self.tau[e])],
                Sense::Le,
                0.0,
            );
            let delta_ij = self.delta[i][j].expect("edge endpoints are distinct");
            self.model.add_constraint(
                format!("c3_{e}"),
                vec![
                    (1.0, self.tau[e]),
                    (-edge.comm_cost, delta_ij),
                    (-1.0, self.t[j]),
                ],
                Sense::Le,
                -edge.comm_cost,
            );
        }

        // (4a/4b) m_ij big-M definition; (6a/6b) sigma_ij big-M definition.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let m_ij = self.m_ord[i][j].unwrap();
                self.model.add_constraint(
                    format!("c4a_{i}_{j}"),
                    vec![(1.0, self.t[j]), (-1.0, self.t[i]), (-m_max, m_ij)],
                    Sense::Le,
                    0.0,
                );
                self.model.add_constraint(
                    format!("c4b_{i}_{j}"),
                    vec![(1.0, self.t[j]), (-1.0, self.t[i]), (-m_max, m_ij)],
                    Sense::Ge,
                    -m_max,
                );
                let s_ij = self.sigma[i][j].unwrap();
                self.model.add_constraint(
                    format!("c6a_{i}_{j}"),
                    vec![
                        (1.0, self.t[j]),
                        (-1.0, self.t[i]),
                        (-1.0, self.w[i]),
                        (-m_max, s_ij),
                    ],
                    Sense::Le,
                    0.0,
                );
                self.model.add_constraint(
                    format!("c6b_{i}_{j}"),
                    vec![
                        (1.0, self.t[j]),
                        (-1.0, self.t[i]),
                        (-1.0, self.w[i]),
                        (-m_max, s_ij),
                    ],
                    Sense::Ge,
                    -m_max,
                );
            }
        }

        // (5), (7), (8), (10): task-vs-communication orderings.
        for e in 0..m {
            let edge = self.graph.edge(EdgeId::from_index(e));
            let (i, j) = (edge.src.index(), edge.dst.index());
            let delta_ij = self.delta[i][j].unwrap();
            for k in 0..n {
                let mp = self.m_prime[e][k];
                self.model.add_constraint(
                    format!("c5a_{e}_{k}"),
                    vec![(1.0, self.tau[e]), (-1.0, self.t[k]), (-m_max, mp)],
                    Sense::Le,
                    0.0,
                );
                self.model.add_constraint(
                    format!("c5b_{e}_{k}"),
                    vec![(1.0, self.tau[e]), (-1.0, self.t[k]), (-m_max, mp)],
                    Sense::Ge,
                    -m_max,
                );
                let sp = self.sigma_prime[e][k];
                self.model.add_constraint(
                    format!("c7a_{e}_{k}"),
                    vec![
                        (1.0, self.tau[e]),
                        (-1.0, self.t[k]),
                        (-1.0, self.w[k]),
                        (-m_max, sp),
                    ],
                    Sense::Le,
                    0.0,
                );
                self.model.add_constraint(
                    format!("c7b_{e}_{k}"),
                    vec![
                        (1.0, self.tau[e]),
                        (-1.0, self.t[k]),
                        (-1.0, self.w[k]),
                        (-m_max, sp),
                    ],
                    Sense::Ge,
                    -m_max,
                );
                let c = self.c_ind[e][k];
                self.model.add_constraint(
                    format!("c8a_{e}_{k}"),
                    vec![(1.0, self.t[k]), (-1.0, self.tau[e]), (-m_max, c)],
                    Sense::Le,
                    0.0,
                );
                self.model.add_constraint(
                    format!("c8b_{e}_{k}"),
                    vec![(1.0, self.t[k]), (-1.0, self.tau[e]), (-m_max, c)],
                    Sense::Ge,
                    -m_max,
                );
                let d = self.d_ind[e][k];
                self.model.add_constraint(
                    format!("c10a_{e}_{k}"),
                    vec![
                        (1.0, self.t[k]),
                        (-1.0, self.tau[e]),
                        (edge.comm_cost, delta_ij),
                        (-m_max, d),
                    ],
                    Sense::Le,
                    edge.comm_cost,
                );
                self.model.add_constraint(
                    format!("c10b_{e}_{k}"),
                    vec![
                        (1.0, self.t[k]),
                        (-1.0, self.tau[e]),
                        (edge.comm_cost, delta_ij),
                        (-m_max, d),
                    ],
                    Sense::Ge,
                    edge.comm_cost - m_max,
                );
            }
            // (9), (11): communication-vs-communication orderings.
            for f in 0..m {
                if f == e {
                    continue;
                }
                let cp = self.c_prime[e][f].unwrap();
                self.model.add_constraint(
                    format!("c9a_{e}_{f}"),
                    vec![(1.0, self.tau[f]), (-1.0, self.tau[e]), (-m_max, cp)],
                    Sense::Le,
                    0.0,
                );
                self.model.add_constraint(
                    format!("c9b_{e}_{f}"),
                    vec![(1.0, self.tau[f]), (-1.0, self.tau[e]), (-m_max, cp)],
                    Sense::Ge,
                    -m_max,
                );
                let dp = self.d_prime[e][f].unwrap();
                self.model.add_constraint(
                    format!("c11a_{e}_{f}"),
                    vec![
                        (1.0, self.tau[f]),
                        (-1.0, self.tau[e]),
                        (edge.comm_cost, delta_ij),
                        (-m_max, dp),
                    ],
                    Sense::Le,
                    edge.comm_cost,
                );
                self.model.add_constraint(
                    format!("c11b_{e}_{f}"),
                    vec![
                        (1.0, self.tau[f]),
                        (-1.0, self.tau[e]),
                        (edge.comm_cost, delta_ij),
                        (-m_max, dp),
                    ],
                    Sense::Ge,
                    edge.comm_cost - m_max,
                );
            }
        }

        // (12) processor-order indicators, (13) processor/memory consistency
        // (0-based processor indices), (14)-(19), (23)-(25).
        for i in 0..n {
            // (13a') p_i <= (P1 - 1) + P2 * b_i
            self.model.add_constraint(
                format!("c13a_{i}"),
                vec![(1.0, self.p[i]), (-p2, self.b[i])],
                Sense::Le,
                p1 - 1.0,
            );
            // (13b') p_i >= P1 * b_i
            self.model.add_constraint(
                format!("c13b_{i}"),
                vec![(1.0, self.p[i]), (-p1, self.b[i])],
                Sense::Ge,
                0.0,
            );
            // (24a/24b) w_i = (1 - b_i) W1_i + b_i W2_i
            let task = self.graph.task(TaskId::from_index(i));
            self.model.add_constraint(
                format!("c24_{i}"),
                vec![
                    (1.0, self.w[i]),
                    (task.work_blue - task.work_red, self.b[i]),
                ],
                Sense::Eq,
                task.work_blue,
            );
            for j in 0..n {
                if i == j {
                    continue;
                }
                let eps_ij = self.eps[i][j].unwrap();
                // (12a) p_j - p_i - eps_ij * |P| <= 0
                self.model.add_constraint(
                    format!("c12a_{i}_{j}"),
                    vec![(1.0, self.p[j]), (-1.0, self.p[i]), (-total_procs, eps_ij)],
                    Sense::Le,
                    0.0,
                );
                // (12b) p_j - p_i - 1 + (1 - eps_ij) * |P| >= 0
                self.model.add_constraint(
                    format!("c12b_{i}_{j}"),
                    vec![(1.0, self.p[j]), (-1.0, self.p[i]), (-total_procs, eps_ij)],
                    Sense::Ge,
                    1.0 - total_procs,
                );
                // (14) m_ij + m_ji >= 1 (emit once per unordered pair)
                if i < j {
                    self.model.add_constraint(
                        format!("c14_{i}_{j}"),
                        vec![
                            (1.0, self.m_ord[i][j].unwrap()),
                            (1.0, self.m_ord[j][i].unwrap()),
                        ],
                        Sense::Ge,
                        1.0,
                    );
                    // (15) sigma_ij + sigma_ji <= 1
                    self.model.add_constraint(
                        format!("c15_{i}_{j}"),
                        vec![
                            (1.0, self.sigma[i][j].unwrap()),
                            (1.0, self.sigma[j][i].unwrap()),
                        ],
                        Sense::Le,
                        1.0,
                    );
                    // (25) sigma_ij + sigma_ji + eps_ij + eps_ji >= 1
                    self.model.add_constraint(
                        format!("c25_{i}_{j}"),
                        vec![
                            (1.0, self.sigma[i][j].unwrap()),
                            (1.0, self.sigma[j][i].unwrap()),
                            (1.0, self.eps[i][j].unwrap()),
                            (1.0, self.eps[j][i].unwrap()),
                        ],
                        Sense::Ge,
                        1.0,
                    );
                }
                // (19) sigma_ij <= m_ij
                self.model.add_constraint(
                    format!("c19_{i}_{j}"),
                    vec![
                        (1.0, self.sigma[i][j].unwrap()),
                        (-1.0, self.m_ord[i][j].unwrap()),
                    ],
                    Sense::Le,
                    0.0,
                );
                // (23) delta linearisation (four inequalities).
                let d_ij = self.delta[i][j].unwrap();
                self.model.add_constraint(
                    format!("c23a_{i}_{j}"),
                    vec![(1.0, d_ij), (-1.0, self.b[i]), (1.0, self.b[j])],
                    Sense::Le,
                    1.0,
                );
                self.model.add_constraint(
                    format!("c23b_{i}_{j}"),
                    vec![(1.0, d_ij), (1.0, self.b[i]), (-1.0, self.b[j])],
                    Sense::Le,
                    1.0,
                );
                self.model.add_constraint(
                    format!("c23c_{i}_{j}"),
                    vec![(1.0, d_ij), (-1.0, self.b[i]), (-1.0, self.b[j])],
                    Sense::Ge,
                    -1.0,
                );
                self.model.add_constraint(
                    format!("c23d_{i}_{j}"),
                    vec![(1.0, d_ij), (1.0, self.b[i]), (1.0, self.b[j])],
                    Sense::Ge,
                    1.0,
                );
            }
        }

        // (16), (20), (21), (22): edge-task consistency; (17), (18): edge-edge.
        for e in 0..m {
            let edge = self.graph.edge(EdgeId::from_index(e));
            let (i, j) = (edge.src.index(), edge.dst.index());
            for k in 0..n {
                // (16) m'_kij + c_ijk >= 1
                self.model.add_constraint(
                    format!("c16_{e}_{k}"),
                    vec![(1.0, self.m_prime[e][k]), (1.0, self.c_ind[e][k])],
                    Sense::Ge,
                    1.0,
                );
                // (20) c_ijk <= sigma_ik (skip k == i where sigma undefined).
                if k != i {
                    self.model.add_constraint(
                        format!("c20_{e}_{k}"),
                        vec![(1.0, self.c_ind[e][k]), (-1.0, self.sigma[i][k].unwrap())],
                        Sense::Le,
                        0.0,
                    );
                }
                // (21) d_ijk <= c_ijk
                self.model.add_constraint(
                    format!("c21_{e}_{k}"),
                    vec![(1.0, self.d_ind[e][k]), (-1.0, self.c_ind[e][k])],
                    Sense::Le,
                    0.0,
                );
                // (22) m_jk <= d_ijk (skip k == j).
                if k != j {
                    self.model.add_constraint(
                        format!("c22_{e}_{k}"),
                        vec![(1.0, self.m_ord[j][k].unwrap()), (-1.0, self.d_ind[e][k])],
                        Sense::Le,
                        0.0,
                    );
                }
            }
            for f in 0..m {
                if e >= f {
                    continue;
                }
                // (17) c'_ef + c'_fe >= 1 ; (18) d'_ef + d'_fe <= 1.
                self.model.add_constraint(
                    format!("c17_{e}_{f}"),
                    vec![
                        (1.0, self.c_prime[e][f].unwrap()),
                        (1.0, self.c_prime[f][e].unwrap()),
                    ],
                    Sense::Ge,
                    1.0,
                );
                self.model.add_constraint(
                    format!("c18_{e}_{f}"),
                    vec![
                        (1.0, self.d_prime[e][f].unwrap()),
                        (1.0, self.d_prime[f][e].unwrap()),
                    ],
                    Sense::Le,
                    1.0,
                );
            }
        }

        // (26) + (26a)-(26d): memory capacity at the start of every task.
        for i in 0..n {
            let mut terms: Vec<(f64, Ind)> = Vec::new();
            let mut constant_lhs = 0.0;
            for e in 0..m {
                let edge = self.graph.edge(EdgeId::from_index(e));
                let (k, p) = (edge.src.index(), edge.dst.index());
                if k == i || p == i {
                    // Own input / output files of task i: always resident when
                    // i starts (part of MemReq(i)).
                    constant_lhs += edge.size;
                    continue;
                }
                let alpha = self
                    .model
                    .add_var(format!("alpha_{e}_{i}"), VarKind::Binary);
                let beta = self.model.add_var(format!("beta_{e}_{i}"), VarKind::Binary);
                terms.push((edge.size, Ind::Var(alpha)));
                terms.push((edge.size, Ind::Var(beta)));

                // (26a) alpha >= delta_ik + m_ki - d_kpi - 1
                let delta_ik = self.delta_ind(i, k);
                let m_ki = Ind::Var(self.m_ord[k][i].unwrap());
                let d_kpi = Ind::Var(self.d_ind[e][i]);
                self.add_ind_constraint(
                    format!("c26a_{e}_{i}"),
                    vec![
                        (1.0, Ind::Var(alpha)),
                        (-1.0, delta_ik),
                        (-1.0, m_ki),
                        (1.0, d_kpi),
                    ],
                    Sense::Ge,
                    -1.0,
                );
                // (26b) 2 alpha <= delta_ik + m_ki - d_kpi
                self.add_ind_constraint(
                    format!("c26b_{e}_{i}"),
                    vec![
                        (2.0, Ind::Var(alpha)),
                        (-1.0, delta_ik),
                        (-1.0, m_ki),
                        (1.0, d_kpi),
                    ],
                    Sense::Le,
                    0.0,
                );
                // (26c) beta >= delta_ip + c_kpi - sigma_pi - 1
                let delta_ip = self.delta_ind(i, p);
                let c_kpi = Ind::Var(self.c_ind[e][i]);
                let sigma_pi = Ind::Var(self.sigma[p][i].unwrap());
                self.add_ind_constraint(
                    format!("c26c_{e}_{i}"),
                    vec![
                        (1.0, Ind::Var(beta)),
                        (-1.0, delta_ip),
                        (-1.0, c_kpi),
                        (1.0, sigma_pi),
                    ],
                    Sense::Ge,
                    -1.0,
                );
                // (26d) 2 beta <= delta_ip + c_kpi - sigma_pi
                self.add_ind_constraint(
                    format!("c26d_{e}_{i}"),
                    vec![
                        (2.0, Ind::Var(beta)),
                        (-1.0, delta_ip),
                        (-1.0, c_kpi),
                        (1.0, sigma_pi),
                    ],
                    Sense::Le,
                    0.0,
                );
            }
            // (26) sum F (alpha + beta) <= (1 - b_i) M_blue + b_i M_red
            //   => sum F (alpha + beta) - (M_red - M_blue) b_i <= M_blue - constant_lhs
            if m_blue.is_finite() && m_red.is_finite() {
                terms.push((-(m_red - m_blue), Ind::Var(self.b[i])));
                self.add_ind_constraint(
                    format!("c26_{i}"),
                    terms,
                    Sense::Le,
                    m_blue - constant_lhs,
                );
            }
        }

        // (27) + (27a)-(27d): memory capacity at the start of every transfer,
        // bounded on the destination memory (deactivated when both endpoints
        // share a memory thanks to the +delta_ij * M_max term).
        for e in 0..m {
            let edge_e = self.graph.edge(EdgeId::from_index(e));
            let (i, j) = (edge_e.src.index(), edge_e.dst.index());
            let mut terms: Vec<(f64, Ind)> = Vec::new();
            let mut constant_lhs = 0.0;
            for f in 0..m {
                let edge_f = self.graph.edge(EdgeId::from_index(f));
                let (k, p) = (edge_f.src.index(), edge_f.dst.index());
                if f == e {
                    // The transferred file itself occupies the destination.
                    constant_lhs += edge_f.size;
                    continue;
                }
                let alpha = self
                    .model
                    .add_var(format!("alphap_{f}_{e}"), VarKind::Binary);
                let beta = self
                    .model
                    .add_var(format!("betap_{f}_{e}"), VarKind::Binary);
                terms.push((edge_f.size, Ind::Var(alpha)));
                terms.push((edge_f.size, Ind::Var(beta)));

                // (27a) alpha' >= delta_kj + m'_kij - d'_kpij - 1
                let delta_kj = self.delta_ind(k, j);
                let m_prime_k = Ind::Var(self.m_prime[e][k]);
                let d_prime_kp = Ind::Var(self.d_prime[f][e].expect("f != e"));
                self.add_ind_constraint(
                    format!("c27a_{f}_{e}"),
                    vec![
                        (1.0, Ind::Var(alpha)),
                        (-1.0, delta_kj),
                        (-1.0, m_prime_k),
                        (1.0, d_prime_kp),
                    ],
                    Sense::Ge,
                    -1.0,
                );
                // (27b)
                self.add_ind_constraint(
                    format!("c27b_{f}_{e}"),
                    vec![
                        (2.0, Ind::Var(alpha)),
                        (-1.0, delta_kj),
                        (-1.0, m_prime_k),
                        (1.0, d_prime_kp),
                    ],
                    Sense::Le,
                    0.0,
                );
                // (27c) beta' >= delta_pj + c'_kpij - sigma'_pij - 1
                let delta_pj = self.delta_ind(p, j);
                let c_prime_kp = Ind::Var(self.c_prime[f][e].expect("f != e"));
                let sigma_prime_p = Ind::Var(self.sigma_prime[e][p]);
                self.add_ind_constraint(
                    format!("c27c_{f}_{e}"),
                    vec![
                        (1.0, Ind::Var(beta)),
                        (-1.0, delta_pj),
                        (-1.0, c_prime_kp),
                        (1.0, sigma_prime_p),
                    ],
                    Sense::Ge,
                    -1.0,
                );
                // (27d)
                self.add_ind_constraint(
                    format!("c27d_{f}_{e}"),
                    vec![
                        (2.0, Ind::Var(beta)),
                        (-1.0, delta_pj),
                        (-1.0, c_prime_kp),
                        (1.0, sigma_prime_p),
                    ],
                    Sense::Le,
                    0.0,
                );
            }
            if m_blue.is_finite() && m_red.is_finite() {
                // sum F (alpha' + beta') <= (1 - b_j) M_blue + b_j M_red + delta_ij M_max
                terms.push((-(m_red - m_blue), Ind::Var(self.b[j])));
                terms.push((-m_max, Ind::Var(self.delta[i][j].unwrap())));
                self.add_ind_constraint(
                    format!("c27_{e}"),
                    terms,
                    Sense::Le,
                    m_blue - constant_lhs,
                );
            }
        }

        self.model
    }
}

/// Builds the ILP of Section 4 for `graph` on `platform`.
///
/// When either memory bound is infinite the memory constraints (26)/(27) are
/// omitted (the model then reduces to a makespan-only formulation, which is
/// what the paper's references \[18, 7\] provide).
pub fn build_ilp(graph: &TaskGraph, platform: &Platform) -> LpModel {
    Builder::new(graph, platform).build()
}

/// Builds the ILP and returns its size statistics.
pub fn ilp_stats(graph: &TaskGraph, platform: &Platform) -> IlpStats {
    let model = build_ilp(graph, platform);
    IlpStats {
        n_variables: model.n_variables(),
        n_binaries: model.n_binaries(),
        n_constraints: model.n_constraints(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;

    fn dex_platform() -> Platform {
        Platform::single_pair(5.0, 5.0)
    }

    #[test]
    fn builds_model_for_dex() {
        let (g, _) = dex();
        let model = build_ilp(&g, &dex_platform());
        assert!(model.n_variables() > 0);
        assert!(model.n_constraints() > 0);
        // Core variables exist.
        assert!(model.find_variable("M").is_some());
        assert!(model.find_variable("t_0").is_some());
        assert!(model.find_variable("b_3").is_some());
        assert!(model.find_variable("w_2").is_some());
        // One tau per edge.
        assert!(model.find_variable("tau_0_1").is_some());
        assert!(model.find_variable("tau_2_3").is_some());
    }

    #[test]
    fn variable_and_constraint_counts_scale_as_stated() {
        // The paper states O(m^2 + mn) variables and constraints. Verify the
        // dominant quadratic growth empirically on chains of increasing size.
        let count = |n_tasks: usize| {
            let mut g = mals_dag::TaskGraph::new();
            let tasks: Vec<_> = (0..n_tasks)
                .map(|i| g.add_task(format!("t{i}"), 1.0, 2.0))
                .collect();
            for w in tasks.windows(2) {
                g.add_edge(w[0], w[1], 1.0, 1.0).unwrap();
            }
            let stats = ilp_stats(&g, &Platform::single_pair(10.0, 10.0));
            (stats.n_variables, stats.n_constraints)
        };
        let (v4, c4) = count(4);
        let (v8, c8) = count(8);
        let (v16, c16) = count(16);
        // Quadratic growth: doubling the size should roughly quadruple the
        // counts (allow generous slack for the linear terms).
        assert!(v8 > 3 * v4 && v8 < 6 * v4, "v4={v4} v8={v8}");
        assert!(v16 > 3 * v8 && v16 < 6 * v8, "v8={v8} v16={v16}");
        assert!(c8 > 3 * c4 && c8 < 6 * c4, "c4={c4} c8={c8}");
        assert!(c16 > 3 * c8 && c16 < 6 * c8, "c8={c8} c16={c16}");
    }

    #[test]
    fn dex_exact_counts_are_stable() {
        // Regression guard: the exact counts for D_ex on a 1+1 platform.
        let (g, _) = dex();
        let stats = ilp_stats(&g, &dex_platform());
        // n = 4 tasks, m = 4 edges.
        // Base: 1 (M) + n (t) + m (tau) + n (p) + n (b) + n (w) = 21 variables,
        // 4 pair families of n(n-1) = 12 binaries each, 4 edge-task families
        // of m*n = 16 binaries each, 2 edge-edge families of m(m-1) = 12 each,
        // plus alpha/beta (26): 2 per (task, non-incident edge) = 2 * 8,
        // and alpha'/beta' (27): 2 per ordered pair of distinct edges = 2 * 12.
        assert_eq!(
            stats.n_variables,
            21 + 4 * 12 + 4 * 16 + 2 * 12 + 2 * 8 + 2 * 12
        );
        assert!(stats.n_binaries > 100);
        assert!(stats.n_constraints > 400);
    }

    #[test]
    fn memory_constraints_skipped_for_unbounded_platform() {
        let (g, _) = dex();
        let bounded = build_ilp(&g, &dex_platform());
        let unbounded = build_ilp(&g, &Platform::single_pair(f64::INFINITY, f64::INFINITY));
        let has_c26 = |m: &LpModel| m.constraints().any(|c| c.name.starts_with("c26_"));
        assert!(has_c26(&bounded));
        assert!(!has_c26(&unbounded));
        assert!(unbounded.n_constraints() < bounded.n_constraints());
    }

    #[test]
    fn lp_export_is_parseable_text() {
        let (g, _) = dex();
        let model = build_ilp(&g, &dex_platform());
        let lp = model.to_lp_format();
        assert!(lp.contains("Minimize"));
        assert!(lp.contains("Subject To"));
        assert!(lp.contains("Binaries"));
        assert!(lp.contains("Generals"));
        assert!(lp.contains("c26_0:"));
        assert!(lp.contains("c27_0:"));
        assert!(lp.trim_end().ends_with("End"));
        // Every line in Subject To has an operator.
        let body: Vec<&str> = lp
            .lines()
            .skip_while(|l| !l.starts_with("Subject To"))
            .skip(1)
            .take_while(|l| !l.starts_with("Bounds"))
            .collect();
        assert!(!body.is_empty());
        for line in body {
            assert!(
                line.contains("<=") || line.contains(">=") || line.contains(" = "),
                "constraint line without operator: {line}"
            );
        }
    }

    #[test]
    fn makespan_horizon_used_as_big_m() {
        let (g, _) = dex();
        // M_max = sum W1 + sum W2 + sum C = 12 + 7 + 4 = 23.
        assert_eq!(g.makespan_horizon(), 23.0);
        let model = build_ilp(&g, &dex_platform());
        // Some big-M constraint should carry the coefficient 23.
        let has_big_m = model
            .constraints()
            .any(|c| c.terms.iter().any(|(coef, _)| *coef == -23.0));
        assert!(has_big_m);
    }
}
