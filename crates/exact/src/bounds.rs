//! Makespan lower bounds and static memory-feasibility analysis.
//!
//! This is the pruning arsenal shared by **both** exact solvers — the
//! combinatorial [`crate::bb::BranchAndBound`] and the MILP backend
//! ([`crate::compact`]) root node — and the source of the "Lower bound"
//! series of Figure 11:
//!
//! * the **critical-path** and **load (area)** bounds are independent of the
//!   memory capacities, so they hold for every feasible schedule;
//! * the **memory-feasibility** analysis compares every task's peak file
//!   footprint (`MemReq(i)`, inputs + outputs — all of them are resident in
//!   the host memory the instant the task starts, per Section 3.2) against
//!   the two capacities: a task that fits in neither memory proves the whole
//!   instance infeasible without any search, and a task that fits in only
//!   one memory has its placement *forced*, which in turn strengthens the
//!   critical-path bound (the forced resource's processing time replaces the
//!   optimistic minimum).

use mals_dag::{algo, TaskGraph, TaskId};
use mals_platform::{Memory, Platform};

/// Critical-path bound: the longest path through the DAG where each task
/// contributes its *smaller* processing time and communications are free.
pub fn critical_path_lower_bound(graph: &TaskGraph) -> f64 {
    algo::critical_path(graph, |t| graph.task(t).min_work(), |_| 0.0).length
}

/// Load-balance (area) bound: the total work, counted at the smaller
/// processing time of every task, spread perfectly over all processors.
pub fn load_lower_bound(graph: &TaskGraph, platform: &Platform) -> f64 {
    graph.total_min_work() / platform.n_procs() as f64
}

/// The best (largest) of the memory-independent lower bounds.
pub fn makespan_lower_bound(graph: &TaskGraph, platform: &Platform) -> f64 {
    critical_path_lower_bound(graph).max(load_lower_bound(graph, platform))
}

/// Optimistic remaining work below each task: the task's minimum processing
/// time plus the largest such value among its children, with communications
/// free. `bottom_level[t]` is a valid lower bound on the time between the
/// start of `t` and the completion of any schedule that still has to run `t`
/// — the pruning quantity of both exact searches.
pub fn optimistic_bottom_levels(graph: &TaskGraph) -> Vec<f64> {
    let order = algo::topological_order(graph).expect("graph must be acyclic");
    let mut bottom = vec![0.0f64; graph.n_tasks()];
    for &t in order.iter().rev() {
        let best_child = graph
            .children(t)
            .map(|c| bottom[c.index()])
            .fold(0.0, f64::max);
        bottom[t.index()] = graph.task(t).min_work() + best_child;
    }
    bottom
}

/// Outcome of the static memory-feasibility analysis (the peak-file-size vs
/// capacity bound).
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryFeasibility {
    /// Tasks whose `MemReq` exceeds **both** capacities; non-empty means the
    /// instance is infeasible under any schedule.
    pub impossible: Vec<TaskId>,
    /// Per task: `Some(µ)` when the other memory is too small, so any
    /// feasible schedule must place the task on `µ`; `None` when both fit.
    pub forced: Vec<Option<Memory>>,
}

impl MemoryFeasibility {
    /// `true` when some task fits in neither memory.
    pub fn is_infeasible(&self) -> bool {
        !self.impossible.is_empty()
    }
}

/// Compares every task's memory requirement against both capacities.
///
/// When task `i` starts on memory `µ`, *all* of its input files and *all* of
/// its output files are resident in `µ` (same-memory inputs since their
/// producers started, cross-memory inputs since their transfers started,
/// outputs from the start of `i` itself), so `MemReq(i) ≤ M_µ` is a
/// necessary condition for placing `i` on `µ` in **any** valid schedule —
/// not just list schedules.
pub fn memory_feasibility(graph: &TaskGraph, platform: &Platform) -> MemoryFeasibility {
    let mut impossible = Vec::new();
    let mut forced = Vec::with_capacity(graph.n_tasks());
    for t in graph.task_ids() {
        let need = graph.mem_req(t);
        let fits_blue = need <= platform.mem_blue + mals_util::EPSILON;
        let fits_red = need <= platform.mem_red + mals_util::EPSILON;
        forced.push(match (fits_blue, fits_red) {
            (true, true) => None,
            (true, false) => Some(Memory::Blue),
            (false, true) => Some(Memory::Red),
            (false, false) => {
                impossible.push(t);
                None
            }
        });
    }
    MemoryFeasibility { impossible, forced }
}

/// Memory-aware critical-path bound: like [`critical_path_lower_bound`], but
/// a task whose placement is forced by [`memory_feasibility`] contributes its
/// processing time on the forced resource instead of the optimistic minimum.
/// Falls back to the plain bound when nothing is forced. Returns the larger
/// of this and the load bound.
pub fn makespan_lower_bound_with_memory(graph: &TaskGraph, platform: &Platform) -> f64 {
    let feas = memory_feasibility(graph, platform);
    let cp = if feas.forced.iter().any(Option::is_some) {
        algo::critical_path(
            graph,
            |t| match feas.forced[t.index()] {
                Some(mem) => graph.task(t).work_on(mem.is_blue()),
                None => graph.task(t).min_work(),
            },
            |_| 0.0,
        )
        .length
    } else {
        critical_path_lower_bound(graph)
    };
    cp.max(load_lower_bound(graph, platform))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;
    use mals_sched::{MemMinMin, Scheduler};

    #[test]
    fn critical_path_bound_of_dex() {
        let (g, _) = dex();
        // Min works: T1 = 1, T2 = 2, T3 = 3, T4 = 1; longest path T1-T3-T4 = 5.
        assert_eq!(critical_path_lower_bound(&g), 5.0);
    }

    #[test]
    fn load_bound_of_dex() {
        let (g, _) = dex();
        let p = Platform::single_pair(10.0, 10.0);
        // Total min work = 7, two processors -> 3.5.
        assert_eq!(load_lower_bound(&g, &p), 3.5);
        assert_eq!(makespan_lower_bound(&g, &p), 5.0);
    }

    #[test]
    fn bounds_never_exceed_a_feasible_makespan() {
        let (g, _) = dex();
        let p = Platform::single_pair(100.0, 100.0);
        let s = MemMinMin::new().schedule(&g, &p).unwrap();
        assert!(makespan_lower_bound(&g, &p) <= s.makespan() + 1e-9);
        assert!(makespan_lower_bound_with_memory(&g, &p) <= s.makespan() + 1e-9);
    }

    #[test]
    fn more_processors_lower_the_load_bound() {
        let (g, _) = dex();
        let small = Platform::new(1, 1, 10.0, 10.0).unwrap();
        let big = Platform::new(4, 4, 10.0, 10.0).unwrap();
        assert!(load_lower_bound(&g, &big) < load_lower_bound(&g, &small));
    }

    #[test]
    fn bottom_levels_of_dex() {
        let (g, [t1, t2, t3, t4]) = dex();
        let bottom = optimistic_bottom_levels(&g);
        // T4 = 1; T3 = 3 + 1; T2 = 2 + 1; T1 = 1 + max(3, 4) = 5.
        assert_eq!(bottom[t4.index()], 1.0);
        assert_eq!(bottom[t3.index()], 4.0);
        assert_eq!(bottom[t2.index()], 3.0);
        assert_eq!(bottom[t1.index()], 5.0);
    }

    #[test]
    fn memory_feasibility_detects_hopeless_bounds() {
        let (g, [t1, _, t3, t4]) = dex();
        // T1 needs 3 (outputs), T3 needs 4, T4 needs 3 (inputs).
        let feas = memory_feasibility(&g, &Platform::single_pair(2.0, 2.0));
        assert!(feas.is_infeasible());
        assert!(feas.impossible.contains(&t1));
        assert!(feas.impossible.contains(&t3));
        assert!(feas.impossible.contains(&t4));
        // Ample on both sides: nothing forced, nothing impossible.
        let feas = memory_feasibility(&g, &Platform::single_pair(10.0, 10.0));
        assert!(!feas.is_infeasible());
        assert!(feas.forced.iter().all(Option::is_none));
    }

    #[test]
    fn asymmetric_bounds_force_placements() {
        let (g, [_, _, t3, _]) = dex();
        // Blue can hold T3's 4 units, red cannot: T3 is forced blue.
        let feas = memory_feasibility(&g, &Platform::single_pair(10.0, 3.5));
        assert!(!feas.is_infeasible());
        assert_eq!(feas.forced[t3.index()], Some(Memory::Blue));
        // And the memory-aware critical path uses T3's blue time (6) on the
        // path T1-T3-T4: 1 + 6 + 1 = 8 > the oblivious bound of 5.
        let p = Platform::single_pair(10.0, 3.5);
        assert_eq!(makespan_lower_bound_with_memory(&g, &p), 8.0);
        assert_eq!(makespan_lower_bound(&g, &p), 5.0);
    }
}
