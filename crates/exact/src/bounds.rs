//! Makespan lower bounds.
//!
//! Both bounds are independent of the memory capacities, so they hold for
//! every feasible schedule and can be used to prune the branch-and-bound
//! search as well as to draw the "Lower bound" series of Figure 11.

use mals_dag::{algo, TaskGraph};
use mals_platform::Platform;

/// Critical-path bound: the longest path through the DAG where each task
/// contributes its *smaller* processing time and communications are free.
pub fn critical_path_lower_bound(graph: &TaskGraph) -> f64 {
    algo::critical_path(graph, |t| graph.task(t).min_work(), |_| 0.0).length
}

/// Load-balance bound: the total work, counted at the smaller processing time
/// of every task, spread perfectly over all processors.
pub fn load_lower_bound(graph: &TaskGraph, platform: &Platform) -> f64 {
    graph.total_min_work() / platform.n_procs() as f64
}

/// The best (largest) of the two lower bounds.
pub fn makespan_lower_bound(graph: &TaskGraph, platform: &Platform) -> f64 {
    critical_path_lower_bound(graph).max(load_lower_bound(graph, platform))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mals_gen::dex;
    use mals_sched::{MemMinMin, Scheduler};

    #[test]
    fn critical_path_bound_of_dex() {
        let (g, _) = dex();
        // Min works: T1 = 1, T2 = 2, T3 = 3, T4 = 1; longest path T1-T3-T4 = 5.
        assert_eq!(critical_path_lower_bound(&g), 5.0);
    }

    #[test]
    fn load_bound_of_dex() {
        let (g, _) = dex();
        let p = Platform::single_pair(10.0, 10.0);
        // Total min work = 7, two processors -> 3.5.
        assert_eq!(load_lower_bound(&g, &p), 3.5);
        assert_eq!(makespan_lower_bound(&g, &p), 5.0);
    }

    #[test]
    fn bounds_never_exceed_a_feasible_makespan() {
        let (g, _) = dex();
        let p = Platform::single_pair(100.0, 100.0);
        let s = MemMinMin::new().schedule(&g, &p).unwrap();
        assert!(makespan_lower_bound(&g, &p) <= s.makespan() + 1e-9);
    }

    #[test]
    fn more_processors_lower_the_load_bound() {
        let (g, _) = dex();
        let small = Platform::new(1, 1, 10.0, 10.0).unwrap();
        let big = Platform::new(4, 4, 10.0, 10.0).unwrap();
        assert!(load_lower_bound(&g, &big) < load_lower_bound(&g, &small));
    }
}
