//! The in-tree MILP exact backend.
//!
//! [`MilpBackend`] solves the memory-constrained scheduling problem with the
//! workspace's own simplex + branch-and-bound MILP machinery. It does **not**
//! hand the paper's full § 4 ILP to the solver — that model carries
//! `O(m² + mn)` big-M binaries and its relaxation is far too weak for a
//! lightweight solver. Instead it works on a *compact disjunctive model*
//! over the real decisions, with the memory constraints enforced lazily:
//!
//! 1. **Compact relaxation**: one binary
//!    `b_i` per task (blue/red placement), one binary `y_{ij}` per unordered
//!    pair that is not already ordered by precedence, continuous start times
//!    `t_i` and the makespan `M`. Precedence rows charge the cross-memory
//!    transfer time through an XOR indicator; big-M disjunction rows
//!    serialise pairs that land on the same single-processor memory. Every
//!    valid schedule with makespan ≤ the incumbent satisfies these rows, so
//!    the LP relaxation is a true lower bound — but it knows nothing about
//!    memory capacities.
//! 2. **Integral nodes** are turned into real schedules: commit the tasks in
//!    LP start order onto their chosen memories with exact greedy timing,
//!    schedule transfers as late as possible, and run the **independent
//!    simulator validator** (including both memory peaks). A validated
//!    schedule whose makespan does not exceed the node's LP bound closes the
//!    node optimally.
//! 3. When the validator rejects the point (the memory bound bit), the
//!    backend runs an exhaustive **fixed-assignment repair** — the
//!    combinatorial search of [`crate::bb`] restricted to the integral
//!    memory assignment — which finds the best list schedule for that
//!    assignment, then excludes the assignment with a **no-good cut** and
//!    lets the MILP search continue. Enumerating assignments this way keeps
//!    the optimality proof: every assignment is either dominated by the LP
//!    bound or exactly searched.
//!
//! Like [`crate::bb::BranchAndBound`], the proof is relative to the
//! list-scheduling decision space once memory is tight (step 3); when the
//! certificate closes at a validated LP point (step 2) it holds for the full
//! schedule space. The two backends are completely independent implementations
//! and are cross-checked against each other in `tests/milp_vs_bb.rs`.

use crate::backend::{ExactBackend, ExactOutcome, SolveLimits};
use crate::bounds::{
    makespan_lower_bound_with_memory, memory_feasibility, optimistic_bottom_levels,
};
use crate::milp::{IntegralDecision, MilpLimits, MilpSolver};
use crate::model::{LpModel, Sense, VarId, VarKind};
use mals_dag::{algo, TaskGraph, TaskId};
use mals_platform::{Memory, Platform};
use mals_sched::{MemHeft, MemMinMin, PartialSchedule, SolveCtx, Solver};
use mals_sim::{validate, CommPlacement, Schedule, TaskPlacement};
use mals_util::{CancelSignal, EPSILON};
use std::collections::HashSet;

/// `true` when every processing time and transfer time is an integer, in
/// which case every list-schedule makespan is an integer as well (start
/// times are maxima of sums of durations).
fn all_durations_integral(graph: &TaskGraph) -> bool {
    graph.task_ids().all(|t| {
        let task = graph.task(t);
        task.work_blue.fract() == 0.0 && task.work_red.fract() == 0.0
    }) && graph
        .edge_ids()
        .all(|e| graph.edge(e).comm_cost.fract() == 0.0)
}

/// Tolerance for accepting an extracted schedule against its LP bound.
const ACCEPT_TOL: f64 = 1e-6;

/// The in-tree MILP exact backend (see the module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct MilpBackend;

impl MilpBackend {
    /// Above this many tasks the backend returns its heuristic incumbent as
    /// a best-effort [`ExactOutcome::Feasible`] instead of attempting the
    /// MILP: the dense simplex basis grows with the square of the pair
    /// count, and in the tight-but-feasible memory band the assignment
    /// enumeration multiplies on top (measured: ≤ 16 tasks stays within
    /// seconds in every regime, 18 tasks can take minutes). Use
    /// [`crate::bb::BranchAndBound`] beyond this — its node budget degrades
    /// gracefully at any size. Drivers can consult this constant to warn
    /// when a workload exceeds the certification ceiling.
    pub const MAX_TASKS: usize = 16;
}

impl ExactBackend for MilpBackend {
    fn name(&self) -> &'static str {
        "Optimal(MILP)"
    }

    fn solve(&self, graph: &TaskGraph, platform: &Platform, limits: &SolveLimits) -> ExactOutcome {
        solve_milp(graph, platform, limits, CancelSignal::default())
    }

    /// The MILP search polling `cancel` once per node — in the outer MILP
    /// branch-and-bound, the heuristic incumbent seeding and the
    /// fixed-assignment repair searches alike.
    fn solve_cancellable(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        limits: &SolveLimits,
        cancel: CancelSignal<'_>,
    ) -> ExactOutcome {
        solve_milp(graph, platform, limits, cancel)
    }
}

/// The compact disjunctive model plus the variable handles the extraction
/// needs to read a relaxation point back.
struct CompactModel {
    model: LpModel,
    start: Vec<VarId>,
    on_red: Vec<VarId>,
}

/// Builds the compact model for schedules with makespan at most `horizon`.
/// `lower_bound` seeds the makespan variable's lower bound; `forced` pins
/// placements dictated by the memory-feasibility analysis.
fn build_compact_model(
    graph: &TaskGraph,
    platform: &Platform,
    horizon: f64,
    lower_bound: f64,
    forced: &[Option<Memory>],
) -> CompactModel {
    let n = graph.n_tasks();
    let h = horizon;
    let mut model = LpModel::new();
    // Crossed bounds (lower_bound > horizon) are legitimate: they make the
    // relaxation infeasible, which correctly reports that nothing beats the
    // incumbent the horizon came from.
    let makespan = model.add_var("M", VarKind::Continuous(lower_bound, h));
    model.set_objective(vec![(1.0, makespan)]);

    // Time windows: a task cannot start before its optimistic top level nor
    // later than `horizon − bottom_level` (the remaining chain must still
    // fit). Tight variable bounds shrink every big-M row for free.
    let bottom = optimistic_bottom_levels(graph);
    let order = algo::topological_order(graph).expect("validated");
    let mut top = vec![0.0f64; n];
    for &t in &order {
        let i = t.index();
        for p in graph.parents(t) {
            let release = top[p.index()] + graph.task(p).min_work();
            top[i] = top[i].max(release);
        }
    }
    let start: Vec<VarId> = (0..n)
        .map(|i| {
            let latest = h - bottom[i];
            model.add_var(format!("t_{i}"), VarKind::Continuous(top[i], latest))
        })
        .collect();
    let on_red: Vec<VarId> = (0..n)
        .map(|i| model.add_var(format!("b_{i}"), VarKind::Binary))
        .collect();
    // dw_i = W_red − W_blue, so the processing time is W_blue + dw_i·b_i.
    let dw: Vec<f64> = graph
        .task_ids()
        .map(|t| graph.task(t).work_red - graph.task(t).work_blue)
        .collect();
    let w_blue: Vec<f64> = graph.task_ids().map(|t| graph.task(t).work_blue).collect();

    for (i, forced_mem) in forced.iter().enumerate() {
        // Forced placements from the peak-file-size bound.
        if let Some(mem) = forced_mem {
            let value = if mem.is_blue() { 0.0 } else { 1.0 };
            model.add_constraint(
                format!("force_{i}"),
                vec![(1.0, on_red[i])],
                Sense::Eq,
                value,
            );
        }
        // t_i + w_i ≤ M.
        model.add_constraint(
            format!("fin_{i}"),
            vec![(1.0, start[i]), (dw[i], on_red[i]), (-1.0, makespan)],
            Sense::Le,
            -w_blue[i],
        );
    }

    // Area (work-conservation) cuts: the work routed to each memory fits on
    // its processors within the makespan — `Σ W1_i (1 − b_i) ≤ P1·M` and
    // `Σ W2_i b_i ≤ P2·M`. These make the LP trade the speed gain of a
    // memory against its capacity to absorb work, which is where most of the
    // relaxation's strength comes from.
    let w_red: Vec<f64> = graph.task_ids().map(|t| graph.task(t).work_red).collect();
    let mut blue_terms: Vec<(f64, VarId)> = vec![(-(platform.blue_procs as f64), makespan)];
    let mut red_terms: Vec<(f64, VarId)> = vec![(-(platform.red_procs as f64), makespan)];
    for i in 0..n {
        blue_terms.push((-w_blue[i], on_red[i]));
        red_terms.push((w_red[i], on_red[i]));
    }
    model.add_constraint(
        "area_blue",
        blue_terms,
        Sense::Le,
        -w_blue.iter().sum::<f64>(),
    );
    model.add_constraint("area_red", red_terms, Sense::Le, 0.0);

    // Precedence rows, with the transfer time charged through an XOR
    // indicator (continuous: the two ≥ rows pin it to |b_i − b_j| once the
    // binaries are integral, and the objective pushes it down in between).
    for e in graph.edge_ids() {
        let edge = graph.edge(e);
        let (i, j) = (edge.src.index(), edge.dst.index());
        let mut terms = vec![(1.0, start[i]), (dw[i], on_red[i]), (-1.0, start[j])];
        if edge.comm_cost > 0.0 {
            let x = model.add_var(format!("x_{i}_{j}"), VarKind::Continuous(0.0, 1.0));
            model.add_constraint(
                format!("xor_a_{i}_{j}"),
                vec![(1.0, on_red[i]), (-1.0, on_red[j]), (-1.0, x)],
                Sense::Le,
                0.0,
            );
            model.add_constraint(
                format!("xor_b_{i}_{j}"),
                vec![(1.0, on_red[j]), (-1.0, on_red[i]), (-1.0, x)],
                Sense::Le,
                0.0,
            );
            terms.push((edge.comm_cost, x));
        }
        model.add_constraint(format!("prec_{i}_{j}"), terms, Sense::Le, -w_blue[i]);
    }

    // Disjunctive rows for pairs that may collide on a single-processor
    // memory. Pairs already ordered by precedence are serialised by the
    // precedence rows; memories with several processors are left to the
    // extraction step (the relaxation stays a valid lower bound).
    let closure = algo::transitive_closure(graph);
    let single_blue = platform.blue_procs == 1;
    let single_red = platform.red_procs == 1;
    if single_blue || single_red {
        for i in 0..n {
            for j in i + 1..n {
                if algo::closure_contains(&closure[i], j) || algo::closure_contains(&closure[j], i)
                {
                    continue;
                }
                let y = model.add_var(format!("y_{i}_{j}"), VarKind::Binary);
                // y = 1 ⇒ i before j; y = 0 ⇒ j before i — enforced only
                // when both tasks sit on the same single-processor memory
                // (the b-dependent guard terms disarm the row otherwise).
                if single_blue {
                    // Guard H·(b_i + b_j): zero exactly when both are blue.
                    model.add_constraint(
                        format!("blue_ij_{i}_{j}"),
                        vec![
                            (1.0, start[i]),
                            (dw[i] - h, on_red[i]),
                            (-1.0, start[j]),
                            (h, y),
                            (-h, on_red[j]),
                        ],
                        Sense::Le,
                        h - w_blue[i],
                    );
                    model.add_constraint(
                        format!("blue_ji_{i}_{j}"),
                        vec![
                            (1.0, start[j]),
                            (dw[j] - h, on_red[j]),
                            (-1.0, start[i]),
                            (-h, y),
                            (-h, on_red[i]),
                        ],
                        Sense::Le,
                        -w_blue[j],
                    );
                }
                if single_red {
                    // Guard H·(2 − b_i − b_j): zero exactly when both red.
                    model.add_constraint(
                        format!("red_ij_{i}_{j}"),
                        vec![
                            (1.0, start[i]),
                            (dw[i] + h, on_red[i]),
                            (-1.0, start[j]),
                            (h, y),
                            (h, on_red[j]),
                        ],
                        Sense::Le,
                        3.0 * h - w_blue[i],
                    );
                    model.add_constraint(
                        format!("red_ji_{i}_{j}"),
                        vec![
                            (1.0, start[j]),
                            (dw[j] + h, on_red[j]),
                            (-1.0, start[i]),
                            (-h, y),
                            (h, on_red[i]),
                        ],
                        Sense::Le,
                        2.0 * h - w_blue[j],
                    );
                }
            }
        }
    }

    CompactModel {
        model,
        start,
        on_red,
    }
}

/// Rebuilds a concrete schedule from an integral relaxation point: tasks are
/// processed in LP start order (precedence-consistent tie-break) on their
/// chosen memories, each starting at the exact greedy earliest time; cross
/// transfers are placed as late as possible. The timing is recomputed with
/// exact float arithmetic, so the result never inherits LP round-off.
fn extract_schedule(
    graph: &TaskGraph,
    platform: &Platform,
    topo_pos: &[usize],
    assignment: &[Memory],
    starts: &[f64],
) -> (Schedule, f64) {
    let mut order: Vec<TaskId> = graph.task_ids().collect();
    order.sort_by(|&a, &b| {
        starts[a.index()]
            .total_cmp(&starts[b.index()])
            .then(topo_pos[a.index()].cmp(&topo_pos[b.index()]))
    });

    let mut schedule = Schedule::for_graph(graph);
    let mut proc_avail = vec![0.0f64; platform.n_procs()];
    let mut finish = vec![0.0f64; graph.n_tasks()];
    let mut makespan = 0.0f64;
    for &task in &order {
        let mem = assignment[task.index()];
        let proc = platform
            .proc_range(mem)
            .min_by(|&a, &b| proc_avail[a].total_cmp(&proc_avail[b]))
            .expect("platforms have at least one processor per memory");
        let mut est = proc_avail[proc];
        for &e in graph.in_edges(task) {
            let edge = graph.edge(e);
            let arrival = if assignment[edge.src.index()] == mem {
                finish[edge.src.index()]
            } else {
                finish[edge.src.index()] + edge.comm_cost
            };
            est = est.max(arrival);
        }
        let eft = est + graph.task(task).work_on(mem.is_blue());
        proc_avail[proc] = eft;
        finish[task.index()] = eft;
        makespan = makespan.max(eft);
        schedule.place_task(TaskPlacement {
            task,
            proc,
            start: est,
            finish: eft,
        });
        for &e in graph.in_edges(task) {
            let edge = graph.edge(e);
            if assignment[edge.src.index()] != mem {
                schedule.place_comm(CommPlacement {
                    edge: e,
                    start: est - edge.comm_cost,
                    finish: est,
                });
            }
        }
    }
    (schedule, makespan)
}

/// Exhaustive search over commit orders with the memory assignment fixed:
/// the [`crate::bb`] search space restricted to one memory per task. Returns
/// the best schedule strictly better than `cutoff` (if any), the nodes
/// spent, and whether the space was fully explored within `budget`.
fn fixed_assignment_search(
    graph: &TaskGraph,
    platform: &Platform,
    assignment: &[Memory],
    cutoff: f64,
    budget: u64,
    cancel: CancelSignal<'_>,
) -> (Option<(Schedule, f64)>, u64, bool) {
    // Assignment-aware bottom levels: remaining work below each task at the
    // *assigned* speed.
    let order = algo::topological_order(graph).expect("validated");
    let mut bottom = vec![0.0f64; graph.n_tasks()];
    for &t in order.iter().rev() {
        let best_child = graph
            .children(t)
            .map(|c| bottom[c.index()])
            .fold(0.0, f64::max);
        let mem = assignment[t.index()];
        bottom[t.index()] = graph.task(t).work_on(mem.is_blue()) + best_child;
    }
    let mut search = FixedSearch {
        graph,
        assignment,
        bottom,
        best_makespan: cutoff,
        best_schedule: None,
        nodes: 0,
        budget,
        complete: true,
        cancel,
    };
    let root = PartialSchedule::new(graph, platform);
    search.explore(&root);
    let best = search.best_schedule.map(|s| {
        let makespan = s.makespan();
        (s, makespan)
    });
    (best, search.nodes, search.complete)
}

struct FixedSearch<'a> {
    graph: &'a TaskGraph,
    assignment: &'a [Memory],
    bottom: Vec<f64>,
    best_makespan: f64,
    best_schedule: Option<Schedule>,
    nodes: u64,
    budget: u64,
    complete: bool,
    cancel: CancelSignal<'a>,
}

impl FixedSearch<'_> {
    /// Node budget exhausted or cancel signal tripped: stop, lose the proof.
    fn out_of_budget(&mut self) -> bool {
        if self.nodes >= self.budget || self.cancel.is_cancelled() {
            self.complete = false;
            true
        } else {
            false
        }
    }
}

impl FixedSearch<'_> {
    fn lower_bound(&self, partial: &PartialSchedule<'_>) -> f64 {
        let mut lb = partial.makespan();
        for task in self.graph.task_ids() {
            if partial.is_scheduled(task) {
                continue;
            }
            let ready_after = self
                .graph
                .parents(task)
                .filter_map(|p| partial.finish_time(p))
                .fold(0.0, f64::max);
            lb = lb.max(ready_after + self.bottom[task.index()]);
        }
        lb
    }

    fn explore(&mut self, partial: &PartialSchedule<'_>) {
        if partial.is_complete() {
            let makespan = partial.makespan();
            if makespan < self.best_makespan - EPSILON {
                self.best_makespan = makespan;
                self.best_schedule = Some(partial.clone().into_schedule());
            }
            return;
        }
        if self.out_of_budget() {
            return;
        }
        self.nodes += 1;
        if self.lower_bound(partial) >= self.best_makespan - EPSILON {
            return;
        }
        let mut moves: Vec<(TaskId, mals_sched::EstBreakdown)> = Vec::new();
        for task in partial.ready_tasks() {
            let mem = self.assignment[task.index()];
            if let Some(bd) = partial.evaluate(task, mem) {
                moves.push((task, bd));
            }
        }
        moves.sort_by(|a, b| {
            let ka = a.1.eft + self.bottom[a.0.index()]
                - self
                    .graph
                    .task(a.0)
                    .work_on(self.assignment[a.0.index()].is_blue());
            let kb = b.1.eft + self.bottom[b.0.index()]
                - self
                    .graph
                    .task(b.0)
                    .work_on(self.assignment[b.0.index()].is_blue());
            ka.total_cmp(&kb)
        });
        for (task, bd) in moves {
            let mut child = partial.clone();
            child.commit(task, &bd);
            self.explore(&child);
            if self.out_of_budget() {
                return;
            }
        }
    }
}

/// The no-good cut excluding exactly one memory assignment:
/// `Σ_{i: b_i = 0} b_i + Σ_{i: b_i = 1} (1 − b_i) ≥ 1`.
fn no_good_cut(on_red: &[VarId], assignment: &[Memory]) -> (Vec<(f64, VarId)>, Sense, f64) {
    let mut terms = Vec::with_capacity(on_red.len());
    let mut rhs = 1.0;
    for (&var, mem) in on_red.iter().zip(assignment) {
        if mem.is_blue() {
            terms.push((1.0, var));
        } else {
            terms.push((-1.0, var));
            rhs -= 1.0;
        }
    }
    (terms, Sense::Ge, rhs)
}

/// The MILP backend's solve loop (see the module docs).
fn solve_milp(
    graph: &TaskGraph,
    platform: &Platform,
    limits: &SolveLimits,
    cancel: CancelSignal<'_>,
) -> ExactOutcome {
    if graph.validate().is_err() {
        return ExactOutcome::LimitHit { nodes: 0 };
    }
    if graph.is_empty() {
        return ExactOutcome::Optimal {
            schedule: Schedule::for_graph(graph),
            makespan: 0.0,
            nodes: 0,
        };
    }
    let feas = memory_feasibility(graph, platform);
    if feas.is_infeasible() {
        return ExactOutcome::Infeasible { nodes: 0 };
    }
    // A pre-tripped signal stops the solve before the incumbent seeding.
    if cancel.is_cancelled() {
        return ExactOutcome::LimitHit { nodes: 0 };
    }

    // Incumbent seeding, exactly like the combinatorial backend: the best of
    // the two memory-aware heuristics (when they succeed). The heuristics
    // observe the same cancel signal per commit.
    let mut best_schedule: Option<Schedule> = None;
    let mut best_makespan = f64::INFINITY;
    let seed_ctx = SolveCtx {
        limits: SolveLimits::default(),
        pool: None,
        cancel,
    };
    for heuristic in [&MemHeft::new() as &dyn Solver, &MemMinMin::new()] {
        if let Some(s) = heuristic.solve(graph, platform, &seed_ctx).schedule {
            if s.makespan() < best_makespan {
                best_makespan = s.makespan();
                best_schedule = Some(s);
            }
        }
    }
    // A mid-seeding trip keeps the incumbent (if any) but skips the search.
    if cancel.is_cancelled() {
        return match best_schedule {
            Some(schedule) => ExactOutcome::Feasible {
                makespan: schedule.makespan(),
                schedule,
                nodes: 0,
            },
            None => ExactOutcome::LimitHit { nodes: 0 },
        };
    }
    let lower_bound = makespan_lower_bound_with_memory(graph, platform);

    // Instances beyond the MILP's reach: fall back to the heuristic
    // incumbent without any optimality claim (mirrors a truncated B&B).
    if graph.n_tasks() > MilpBackend::MAX_TASKS {
        return match best_schedule {
            Some(schedule) => ExactOutcome::Feasible {
                makespan: schedule.makespan(),
                schedule,
                nodes: 0,
            },
            None => ExactOutcome::LimitHit { nodes: 0 },
        };
    }

    // Big-M horizon: only schedules at least as good as the incumbent are
    // interesting, so the incumbent makespan is a valid (and much tighter)
    // big-M than the naive work+comm horizon. With purely integral
    // durations every list-schedule makespan is integral (starts are sums
    // of works and transfer times), so "strictly better than U" tightens to
    // "≤ U − 1" and the lower bound rounds up — both shrink the proof gap
    // substantially.
    let integral = all_durations_integral(graph);
    let lower_bound = if integral {
        (lower_bound - 1e-9).ceil()
    } else {
        lower_bound
    };
    if best_makespan <= lower_bound + EPSILON {
        return ExactOutcome::Optimal {
            makespan: best_makespan,
            schedule: best_schedule.expect("finite makespan implies a schedule"),
            nodes: 0,
        };
    }
    let horizon = if best_makespan.is_finite() {
        if integral {
            best_makespan - 1.0
        } else {
            best_makespan
        }
    } else {
        graph.makespan_horizon().max(1.0)
    };
    let cm = build_compact_model(graph, platform, horizon, lower_bound, &feas.forced);
    let topo_pos = {
        let order = algo::topological_order(graph).expect("validated");
        let mut pos = vec![0usize; graph.n_tasks()];
        for (k, &t) in order.iter().enumerate() {
            pos[t.index()] = k;
        }
        pos
    };

    // Branch memory assignments (class 0) before ordering binaries
    // (class 1): the b's drive both the area cuts and the task speeds.
    let mut priority = vec![1u8; cm.model.n_variables()];
    for v in &cm.on_red {
        priority[v.index()] = 0;
    }
    let solver = MilpSolver::new(MilpLimits {
        node_limit: limits.node_limit,
        lp_iteration_limit: limits.lp_iteration_limit,
    })
    .with_branch_priority(priority);
    let initial_cutoff = best_makespan.is_finite().then_some(best_makespan);
    let mut repaired: HashSet<Vec<bool>> = HashSet::new();
    let mut repair_nodes = 0u64;
    let mut repair_complete = true;

    let result = solver.solve_with_cancel(
        &cm.model,
        initial_cutoff,
        |x, lp_obj| {
            let assignment: Vec<Memory> = cm
                .on_red
                .iter()
                .map(|v| {
                    if x[v.index()] > 0.5 {
                        Memory::Red
                    } else {
                        Memory::Blue
                    }
                })
                .collect();
            let starts: Vec<f64> = cm.start.iter().map(|v| x[v.index()]).collect();
            let (schedule, makespan) =
                extract_schedule(graph, platform, &topo_pos, &assignment, &starts);
            let report = validate(graph, platform, &schedule);
            if report.is_valid() && makespan <= lp_obj + ACCEPT_TOL {
                if makespan < best_makespan {
                    best_makespan = makespan;
                    best_schedule = Some(schedule);
                }
                return IntegralDecision::Accept {
                    objective: makespan,
                };
            }
            // The point is memory-infeasible (or processor contention pushed the
            // greedy timing past the LP bound): search this assignment exactly,
            // then exclude it.
            let mut achieved = None;
            if report.is_valid() && makespan < best_makespan {
                best_makespan = makespan;
                best_schedule = Some(schedule);
                achieved = Some(makespan);
            }
            let key: Vec<bool> = assignment.iter().map(|m| !m.is_blue()).collect();
            if repaired.insert(key) {
                let budget = limits.node_limit.saturating_sub(repair_nodes);
                let (found, used, complete) = fixed_assignment_search(
                    graph,
                    platform,
                    &assignment,
                    best_makespan,
                    budget,
                    cancel,
                );
                repair_nodes += used;
                if !complete {
                    repair_complete = false;
                }
                if let Some((s, ms)) = found {
                    if ms < best_makespan {
                        best_makespan = ms;
                        best_schedule = Some(s);
                        achieved = Some(ms);
                    }
                }
            }
            IntegralDecision::Reject {
                cut: no_good_cut(&cm.on_red, &assignment),
                achieved,
            }
        },
        cancel,
    );

    let nodes = result.nodes + repair_nodes;
    let proven = result.proven && repair_complete;
    match (best_schedule, proven) {
        (Some(schedule), true) => ExactOutcome::Optimal {
            makespan: schedule.makespan(),
            schedule,
            nodes,
        },
        (Some(schedule), false) => ExactOutcome::Feasible {
            makespan: schedule.makespan(),
            schedule,
            nodes,
        },
        (None, true) => ExactOutcome::Infeasible { nodes },
        (None, false) => ExactOutcome::LimitHit { nodes },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bb::BranchAndBound;
    use mals_gen::dex;

    fn solve(platform: &Platform) -> ExactOutcome {
        let (g, _) = dex();
        ExactBackend::solve(&MilpBackend, &g, platform, &SolveLimits::default())
    }

    #[test]
    fn dex_optimum_with_memory_5_is_6() {
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let outcome = solve(&platform);
        assert!(outcome.is_optimal(), "{outcome:?}");
        assert!((outcome.makespan().unwrap() - 6.0).abs() < 1e-9);
        let report = validate(&g, &platform, outcome.schedule().unwrap());
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(report.peaks.blue <= 5.0 + 1e-9 && report.peaks.red <= 5.0 + 1e-9);
    }

    #[test]
    fn dex_optimum_with_memory_4_is_7() {
        // Tight memory exercises the repair path: the paper's optimal
        // makespan under symmetric bounds of 4 is 7.
        let (g, _) = dex();
        let platform = Platform::single_pair(4.0, 4.0);
        let outcome = solve(&platform);
        assert!(outcome.is_optimal(), "{outcome:?}");
        assert!((outcome.makespan().unwrap() - 7.0).abs() < 1e-9);
        let report = validate(&g, &platform, outcome.schedule().unwrap());
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(report.peaks.blue <= 4.0 + 1e-9 && report.peaks.red <= 4.0 + 1e-9);
    }

    #[test]
    fn dex_infeasible_with_memory_2_is_proven() {
        let outcome = solve(&Platform::single_pair(2.0, 2.0));
        assert!(matches!(outcome, ExactOutcome::Infeasible { nodes: 0 }));
    }

    #[test]
    fn empty_graph_is_trivially_optimal() {
        let g = TaskGraph::new();
        let outcome = ExactBackend::solve(
            &MilpBackend,
            &g,
            &Platform::default(),
            &SolveLimits::default(),
        );
        assert!(outcome.is_optimal());
        assert_eq!(outcome.makespan(), Some(0.0));
    }

    #[test]
    fn agrees_with_bb_on_dex_asymmetric_bounds() {
        let (g, _) = dex();
        for (blue, red) in [(4.0, 5.0), (5.0, 4.0), (3.0, 5.0), (10.0, 10.0)] {
            let platform = Platform::single_pair(blue, red);
            let milp = ExactBackend::solve(&MilpBackend, &g, &platform, &SolveLimits::default());
            let bb = BranchAndBound::default().solve(&g, &platform);
            assert!(bb.proven_optimal);
            match (milp.makespan(), bb.makespan) {
                (Some(a), Some(b)) => {
                    assert!(milp.is_optimal());
                    assert!((a - b).abs() < 1e-6, "({blue},{red}): milp {a} vs bb {b}");
                }
                (None, None) => assert!(milp.is_proven()),
                (a, b) => panic!("({blue},{red}): milp {a:?} vs bb {b:?}"),
            }
        }
    }

    #[test]
    fn forced_memories_are_respected() {
        // Red can hold nothing above 3.5: T3 (MemReq 4) is forced blue, and
        // the resulting optimum is still found and validated.
        let (g, _) = dex();
        let platform = Platform::single_pair(10.0, 3.5);
        let outcome = solve(&platform);
        assert!(outcome.is_optimal(), "{outcome:?}");
        let schedule = outcome.schedule().unwrap();
        let report = validate(&g, &platform, schedule);
        assert!(report.is_valid(), "{:?}", report.errors);
        let bb = BranchAndBound::default().solve(&g, &platform);
        assert!((outcome.makespan().unwrap() - bb.makespan.unwrap()).abs() < 1e-6);
    }

    #[test]
    fn multi_processor_platform_small_instance() {
        // Two processors per memory: the pair disjunctions are relaxed and
        // the extraction handles the packing; cross-check against bb.
        let (g, _) = dex();
        let platform = Platform::new(2, 2, 6.0, 6.0).unwrap();
        let milp = ExactBackend::solve(&MilpBackend, &g, &platform, &SolveLimits::default());
        let bb = BranchAndBound::default().solve(&g, &platform);
        assert!(bb.proven_optimal);
        let (a, b) = (milp.makespan().unwrap(), bb.makespan.unwrap());
        assert!((a - b).abs() < 1e-6, "milp {a} vs bb {b}");
        let report = validate(&g, &platform, milp.schedule().unwrap());
        assert!(report.is_valid(), "{:?}", report.errors);
    }
}
