//! Branch-and-bound optimal scheduler.
//!
//! The paper computes optimal makespans for small instances by solving the
//! ILP of Section 4 with CPLEX. This module provides the workspace's
//! stand-in: an exhaustive search over the list-scheduling decision space —
//! at every step, which ready task to commit next and on which memory — using
//! the same placement engine (`mals_sched::PartialSchedule`) as the
//! heuristics, so every leaf is a valid schedule under the memory bounds.
//!
//! Pruning:
//!
//! * the incumbent is initialised with the best of MemHEFT and MemMinMin
//!   (when they succeed), so the search starts with a good upper bound;
//! * a node is cut when `max(makespan so far, ready task earliest start +
//!   its optimistic remaining critical path)` reaches the incumbent;
//! * children are explored best-first (smallest optimistic completion time
//!   first), which makes the node limit graceful: even a truncated search
//!   returns a high-quality schedule.
//!
//! Within this decision space the returned makespan is optimal when the
//! search completes (`proven_optimal`). The space excludes schedules that
//! insert deliberate idle time or start transfers earlier than necessary, a
//! restriction shared with all list schedulers; `DESIGN.md` discusses why
//! this is an adequate substitute for the CPLEX runs of the paper.

use crate::bounds::{
    makespan_lower_bound_with_memory, memory_feasibility, optimistic_bottom_levels,
};
use mals_dag::{TaskGraph, TaskId};
use mals_platform::{Memory, Platform};
use mals_sched::{
    MemHeft, MemMinMin, PartialSchedule, ScheduleError, Scheduler, SolveCtx, SolveLimits, Solver,
};
use mals_sim::Schedule;
use mals_util::{CancelSignal, EPSILON};

/// Configuration of the branch-and-bound search.
#[derive(Debug, Clone, Copy)]
pub struct BranchAndBound {
    /// Maximum number of search-tree nodes to expand before giving up on the
    /// optimality proof (the best schedule found so far is still returned).
    pub node_limit: u64,
}

impl Default for BranchAndBound {
    fn default() -> Self {
        BranchAndBound {
            node_limit: 500_000,
        }
    }
}

/// Result of an exact solve.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// Best schedule found (None when the instance is infeasible within the
    /// memory bounds, or when the truncated search found nothing).
    pub schedule: Option<Schedule>,
    /// Makespan of that schedule.
    pub makespan: Option<f64>,
    /// `true` when the search space was fully explored: the result is then
    /// either a provably optimal schedule or a proof of infeasibility.
    pub proven_optimal: bool,
    /// Number of search-tree nodes expanded.
    pub nodes_explored: u64,
}

struct SearchState<'a> {
    graph: &'a TaskGraph,
    bottom_level: Vec<f64>,
    best_makespan: f64,
    best_schedule: Option<Schedule>,
    nodes: u64,
    node_limit: u64,
    complete: bool,
    cancel: CancelSignal<'a>,
}

impl SearchState<'_> {
    /// True when the search must wind down: node budget exhausted or the
    /// cancel signal tripped. Both lose the optimality proof but keep the
    /// incumbent.
    fn out_of_budget(&mut self) -> bool {
        if self.nodes >= self.node_limit || self.cancel.is_cancelled() {
            self.complete = false;
            true
        } else {
            false
        }
    }
}

impl BranchAndBound {
    /// Creates a solver with the given node budget.
    pub fn with_node_limit(node_limit: u64) -> Self {
        BranchAndBound { node_limit }
    }

    /// Solves the instance exactly (within the node budget).
    pub fn solve(&self, graph: &TaskGraph, platform: &Platform) -> ExactResult {
        self.solve_cancellable(graph, platform, CancelSignal::default())
    }

    /// [`BranchAndBound::solve`] polling `cancel` once per expanded node
    /// (and inside the heuristic incumbent seeding, once per commit): when
    /// the signal trips, the search stops with `proven_optimal = false` and
    /// returns the incumbent found so far, if any.
    pub fn solve_cancellable(
        &self,
        graph: &TaskGraph,
        platform: &Platform,
        cancel: CancelSignal<'_>,
    ) -> ExactResult {
        if graph.validate().is_err() {
            return ExactResult {
                schedule: None,
                makespan: None,
                proven_optimal: false,
                nodes_explored: 0,
            };
        }
        if graph.is_empty() {
            return ExactResult {
                schedule: Some(Schedule::for_graph(graph)),
                makespan: Some(0.0),
                proven_optimal: true,
                nodes_explored: 0,
            };
        }

        // Static memory analysis (shared with the MILP backend): a task
        // whose files fit in neither memory proves infeasibility without
        // expanding a single node.
        if memory_feasibility(graph, platform).is_infeasible() {
            return ExactResult {
                schedule: None,
                makespan: None,
                proven_optimal: true,
                nodes_explored: 0,
            };
        }

        // A pre-tripped signal stops the solve before the (potentially
        // expensive on large graphs) incumbent seeding.
        if cancel.is_cancelled() {
            return ExactResult {
                schedule: None,
                makespan: None,
                proven_optimal: false,
                nodes_explored: 0,
            };
        }

        // Optimistic remaining work below each task (zero communications,
        // faster resource): a valid completion-time bound for any descendant
        // chain of the task.
        let bottom_level = optimistic_bottom_levels(graph);

        // Incumbent: best heuristic schedule, if any. The heuristics observe
        // the same cancel signal per commit, so a mid-seeding trip falls
        // through to the (immediately truncated) search below.
        let mut best_makespan = f64::INFINITY;
        let mut best_schedule = None;
        let seed_ctx = SolveCtx {
            limits: SolveLimits::default(),
            pool: None,
            cancel,
        };
        for heuristic in [&MemHeft::new() as &dyn Solver, &MemMinMin::new()] {
            if let Some(s) = heuristic.solve(graph, platform, &seed_ctx).schedule {
                if s.makespan() < best_makespan {
                    best_makespan = s.makespan();
                    best_schedule = Some(s);
                }
            }
        }

        let mut state = SearchState {
            graph,
            bottom_level,
            best_makespan,
            best_schedule,
            nodes: 0,
            node_limit: self.node_limit,
            complete: true,
            cancel,
        };

        // Quick optimality check: the incumbent may already match the global
        // lower bound (strengthened by forced memory placements).
        let global_lb = makespan_lower_bound_with_memory(graph, platform);
        if state.best_makespan <= global_lb + EPSILON {
            return ExactResult {
                makespan: state.best_schedule.as_ref().map(|s| s.makespan()),
                schedule: state.best_schedule,
                proven_optimal: true,
                nodes_explored: 0,
            };
        }

        let root = PartialSchedule::new(graph, platform);
        explore(&root, &mut state);

        ExactResult {
            makespan: state.best_schedule.as_ref().map(|s| s.makespan()),
            schedule: state.best_schedule,
            proven_optimal: state.complete,
            nodes_explored: state.nodes,
        }
    }
}

/// Lower bound on the completion time of any extension of `partial`.
fn partial_lower_bound(partial: &PartialSchedule<'_>, state: &SearchState<'_>) -> f64 {
    let mut lb = partial.makespan();
    for task in state.graph.task_ids() {
        if partial.is_scheduled(task) {
            continue;
        }
        // Earliest conceivable start: every scheduled parent must have
        // finished (communications and memory waits ignored — optimistic).
        let ready_after = state
            .graph
            .parents(task)
            .filter_map(|p| partial.finish_time(p))
            .fold(0.0, f64::max);
        lb = lb.max(ready_after + state.bottom_level[task.index()]);
    }
    lb
}

fn explore(partial: &PartialSchedule<'_>, state: &mut SearchState<'_>) {
    if partial.is_complete() {
        let makespan = partial.makespan();
        if makespan < state.best_makespan - EPSILON {
            state.best_makespan = makespan;
            state.best_schedule = Some(partial.clone().into_schedule());
        }
        return;
    }
    if state.out_of_budget() {
        return;
    }
    state.nodes += 1;

    if partial_lower_bound(partial, state) >= state.best_makespan - EPSILON {
        return; // cannot improve on the incumbent
    }

    // Candidate moves: every (ready task, memory) pair that fits.
    let mut moves: Vec<(TaskId, mals_sched::EstBreakdown)> = Vec::new();
    for task in partial.ready_tasks() {
        for mem in Memory::BOTH {
            if let Some(bd) = partial.evaluate(task, mem) {
                moves.push((task, bd));
            }
        }
    }
    if moves.is_empty() {
        // Dead end: no remaining task fits in either memory.
        return;
    }
    // Best-first: smallest optimistic completion of the committed task.
    moves.sort_by(|a, b| {
        let ka = a.1.eft + state.bottom_level[a.0.index()] - state.graph.task(a.0).min_work();
        let kb = b.1.eft + state.bottom_level[b.0.index()] - state.graph.task(b.0).min_work();
        ka.total_cmp(&kb)
    });

    for (task, bd) in moves {
        let mut child = partial.clone();
        child.commit(task, &bd);
        explore(&child, state);
        if state.out_of_budget() {
            return;
        }
    }
}

impl Scheduler for BranchAndBound {
    fn name(&self) -> &'static str {
        "Optimal(B&B)"
    }

    fn schedule(&self, graph: &TaskGraph, platform: &Platform) -> Result<Schedule, ScheduleError> {
        graph.validate()?;
        match self.solve(graph, platform).schedule {
            Some(s) => Ok(s),
            None => Err(ScheduleError::Infeasible {
                scheduled: 0,
                total: graph.n_tasks(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::makespan_lower_bound;
    use mals_gen::{dex, DaggenParams, WeightRanges};
    use mals_sim::validate;
    use mals_util::Pcg64;

    #[test]
    fn dex_optimum_with_memory_5_is_6() {
        // The paper (Figures 3/4) states the optimal makespan of D_ex on a
        // 1 blue + 1 red platform with both memory bounds equal to 5 is 6.
        let (g, _) = dex();
        let platform = Platform::single_pair(5.0, 5.0);
        let result = BranchAndBound::default().solve(&g, &platform);
        assert!(result.proven_optimal);
        let makespan = result.makespan.unwrap();
        assert_eq!(makespan, 6.0);
        let report = validate(&g, &platform, &result.schedule.unwrap());
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(report.peaks.blue <= 5.0 && report.peaks.red <= 5.0);
    }

    #[test]
    fn dex_optimum_with_memory_4_is_slower() {
        // Tightening both bounds to 4 forces a slower schedule (the paper's
        // s2 has makespan 7).
        let (g, _) = dex();
        let platform = Platform::single_pair(4.0, 4.0);
        let result = BranchAndBound::default().solve(&g, &platform);
        assert!(result.proven_optimal);
        let makespan = result.makespan.expect("a schedule exists with bound 4");
        assert!(
            makespan > 6.0,
            "makespan {makespan} should exceed the bound-5 optimum"
        );
        assert!(
            makespan <= 7.0 + 1e-9,
            "the paper exhibits a schedule of makespan 7"
        );
        let report = validate(&g, &platform, &result.schedule.unwrap());
        assert!(report.is_valid(), "{:?}", report.errors);
        assert!(report.peaks.blue <= 4.0 && report.peaks.red <= 4.0);
    }

    #[test]
    fn optimum_never_exceeds_heuristics() {
        let mut rng = Pcg64::new(3);
        for _ in 0..5 {
            let g = mals_gen::daggen::generate(
                &DaggenParams {
                    size: 8,
                    width: 0.4,
                    density: 0.5,
                    jumps: 3,
                },
                &WeightRanges::small_rand(),
                &mut rng,
            );
            let platform = Platform::single_pair(60.0, 60.0);
            let exact = BranchAndBound::default().solve(&g, &platform);
            let opt = exact.makespan.expect("feasible with ample memory");
            for heuristic in [&MemHeft::new() as &dyn Scheduler, &MemMinMin::new()] {
                let h = heuristic.schedule(&g, &platform).unwrap();
                assert!(
                    opt <= h.makespan() + 1e-9,
                    "optimal {opt} must not exceed {} ({})",
                    h.makespan(),
                    heuristic.name()
                );
            }
            assert!(opt >= makespan_lower_bound(&g, &platform) - 1e-9);
        }
    }

    #[test]
    fn infeasible_instance_is_proven() {
        let (g, _) = dex();
        // T1's output files alone need 3 units: bound 2 is hopeless.
        let platform = Platform::single_pair(2.0, 2.0);
        let result = BranchAndBound::default().solve(&g, &platform);
        assert!(result.schedule.is_none());
        assert!(
            result.proven_optimal,
            "exhaustive search proves infeasibility"
        );
        let err = BranchAndBound::default()
            .schedule(&g, &platform)
            .unwrap_err();
        assert!(matches!(err, ScheduleError::Infeasible { .. }));
    }

    #[test]
    fn node_limit_degrades_gracefully() {
        let mut rng = Pcg64::new(9);
        let g = mals_gen::daggen::generate(
            &DaggenParams {
                size: 12,
                width: 0.5,
                density: 0.5,
                jumps: 3,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let platform = Platform::single_pair(100.0, 100.0);
        let truncated = BranchAndBound::with_node_limit(50).solve(&g, &platform);
        // Even with a tiny budget the incumbent (heuristic) schedule remains.
        assert!(truncated.schedule.is_some());
        assert!(truncated.nodes_explored <= 51);
    }

    #[test]
    fn empty_graph() {
        let g = TaskGraph::new();
        let platform = Platform::default();
        let r = BranchAndBound::default().solve(&g, &platform);
        assert_eq!(r.makespan, Some(0.0));
        assert!(r.proven_optimal);
    }

    #[test]
    fn exact_can_beat_memory_oblivious_ordering_under_tight_memory() {
        // On D_ex with asymmetric bounds the B&B should find a schedule at
        // least as good as both heuristics.
        let (g, _) = dex();
        let platform = Platform::single_pair(4.0, 5.0);
        let exact = BranchAndBound::default().solve(&g, &platform);
        let opt = exact.makespan.expect("feasible");
        for heuristic in [&MemHeft::new() as &dyn Scheduler, &MemMinMin::new()] {
            if let Ok(s) = heuristic.schedule(&g, &platform) {
                assert!(opt <= s.makespan() + 1e-9);
            }
        }
    }
}
