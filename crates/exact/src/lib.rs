//! Exact solvers for memory-constrained dual-memory scheduling.
//!
//! The paper obtains optimal makespans for small instances (up to ~30 tasks)
//! by solving an intricate Integer Linear Program with CPLEX. This crate
//! reproduces that capability with two complementary components:
//!
//! * [`ilp`] — a faithful construction of the ILP of Section 4 (every
//!   variable family of Figure 5, every constraint of Figures 6 and 7,
//!   including the linearisation of the memory constraints), together with an
//!   export in CPLEX LP text format so the model can be fed to any external
//!   MILP solver. No solver ships with the workspace (CPLEX is proprietary),
//!   so the model is used for inspection, counting and export only.
//! * [`bb`] — a branch-and-bound **optimal scheduler** over the
//!   list-scheduling decision space (which task next, on which memory), using
//!   the same placement engine as the heuristics. It returns provably optimal
//!   makespans within that space for the small instances of the paper's
//!   Figure 10/11 experiments, replacing the CPLEX runs (see `DESIGN.md` for
//!   the substitution rationale).
//! * [`simplex`] / [`milp`] — an in-tree bounded-variable revised simplex
//!   and a best-first branch-and-bound MILP solver over [`model::LpModel`],
//!   so optimal makespans no longer require proprietary tooling;
//! * [`compact`] — the MILP **exact backend**: a compact disjunctive model
//!   solved with the in-tree MILP machinery, with lazy memory enforcement
//!   through the simulator's validator;
//! * [`backend`] — the pluggable [`backend::ExactBackend`] layer tying the
//!   three backends (B&B, MILP, LP export) behind one trait for the
//!   experiment campaigns (`--exact-backend {milp,bb,lp-export}`);
//! * [`solvers`] — the backends as unified [`mals_sched::Solver`]s and
//!   [`solver_registry`], the full name-keyed registry (heuristics + exact)
//!   that the drivers and the service surface resolve solver names against;
//! * [`bounds`] — makespan lower bounds (critical path, load balance,
//!   memory-feasibility) shared by both exact solvers for pruning and
//!   plotted as the "Lower bound" series of Figure 11.

#![warn(missing_docs)]

pub mod backend;
pub mod bb;
pub mod bounds;
pub mod compact;
pub mod ilp;
pub mod milp;
pub mod model;
pub mod simplex;
pub mod solvers;

pub use backend::{ExactBackend, ExactBackendKind, ExactOutcome, ExactScheduler, SolveLimits};
pub use bb::{BranchAndBound, ExactResult};
pub use bounds::{
    critical_path_lower_bound, load_lower_bound, makespan_lower_bound, memory_feasibility,
    optimistic_bottom_levels, MemoryFeasibility,
};
pub use compact::MilpBackend;
pub use ilp::{build_ilp, IlpStats};
pub use milp::{MilpLimits, MilpResult, MilpSolver, MilpStatus};
pub use model::{Constraint, LpModel, Sense, StandardForm, VarId, VarKind};
pub use simplex::{solve_lp, LpSolution, LpStatus};
pub use solvers::{engine, outcome_from_exact, solver_registry};
