//! Mutual-oracle property tests: the in-tree MILP backend and the
//! combinatorial branch-and-bound are two completely independent exact
//! solvers, so on small instances they must arrive at the same optimum —
//! each one vouches for the other (the role CPLEX plays for the paper's
//! Figure 10).

use mals_exact::{BranchAndBound, ExactBackend, MilpBackend, SolveLimits};
use mals_gen::{dex, DaggenParams, WeightRanges};
use mals_platform::Platform;
use mals_sim::validate;
use mals_util::Pcg64;
use proptest::prelude::*;

/// A seeded random DAG of at most 10 tasks with SmallRandSet-style weights.
fn arb_small_graph() -> impl Strategy<Value = mals_dag::TaskGraph> {
    (any::<u64>(), 4usize..=10, 1usize..=3).prop_map(|(seed, size, jumps)| {
        let mut rng = Pcg64::new(seed);
        mals_gen::daggen::generate(
            &DaggenParams {
                size,
                width: 0.5,
                density: 0.5,
                jumps,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        )
    })
}

/// Solves with both backends and checks agreement + validator cleanliness.
fn assert_mutual_oracle(graph: &mals_dag::TaskGraph, platform: &Platform) {
    let limits = SolveLimits::default();
    let milp = MilpBackend.solve(graph, platform, &limits);
    let bb = ExactBackend::solve(&BranchAndBound::default(), graph, platform, &limits);
    assert!(
        milp.is_proven(),
        "MILP backend must settle small instances: {milp:?}"
    );
    assert!(
        bb.is_proven(),
        "B&B backend must settle small instances: {bb:?}"
    );
    match (milp.makespan(), bb.makespan()) {
        (Some(a), Some(b)) => {
            assert!(
                (a - b).abs() < 1e-6,
                "optimal makespans disagree: MILP {a} vs B&B {b}"
            );
            for (name, outcome) in [("MILP", &milp), ("B&B", &bb)] {
                let report = validate(graph, platform, outcome.schedule().unwrap());
                assert!(
                    report.is_valid(),
                    "{name} schedule rejected by the validator: {:?}",
                    report.errors
                );
                assert!(report.peaks.blue <= platform.mem_blue + 1e-6);
                assert!(report.peaks.red <= platform.mem_red + 1e-6);
            }
        }
        (None, None) => {} // both proved infeasibility
        (a, b) => panic!("feasibility verdicts disagree: MILP {a:?} vs B&B {b:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    /// The acceptance sweep: on random DAGs of ≤ 10 tasks with ample memory
    /// (every file fits simultaneously), both exact backends return Optimal
    /// with the same makespan and both schedules pass the validator under
    /// both memory bounds.
    #[test]
    fn milp_and_bb_agree_on_small_instances(graph in arb_small_graph()) {
        let ample = graph.total_file_size().max(1.0);
        let platform = Platform::single_pair(ample, ample);
        assert_mutual_oracle(&graph, &platform);
    }

    /// Under moderately tight symmetric bounds (60% of the total file
    /// volume) the MILP backend must never be *worse* than B&B — its search
    /// space contains every list schedule B&B can reach — and whatever it
    /// returns must validate. (Under tight memory the LP-certified path may
    /// legitimately beat the list-scheduling space, hence ≤, not =.)
    #[test]
    fn milp_never_worse_than_bb_under_tight_memory(graph in arb_small_graph()) {
        let bound = (0.6 * graph.total_file_size()).max(graph.max_mem_req());
        let platform = Platform::single_pair(bound, bound);
        let limits = SolveLimits::default();
        let milp = MilpBackend.solve(&graph, &platform, &limits);
        let bb = ExactBackend::solve(&BranchAndBound::default(), &graph, &platform, &limits);
        if let (Some(a), Some(b)) = (milp.makespan(), bb.makespan()) {
            assert!(a <= b + 1e-6, "MILP {a} worse than B&B {b}");
            let report = validate(&graph, &platform, milp.schedule().unwrap());
            assert!(report.is_valid(), "{:?}", report.errors);
        }
        if bb.makespan().is_some() {
            assert!(
                milp.makespan().is_some(),
                "B&B found a schedule the MILP backend missed: {milp:?}"
            );
        }
    }
}

#[test]
fn toy_instances_agree_across_the_memory_range() {
    // Every interesting bound of the paper's toy DAG, including the
    // infeasible end: the two backends must agree point by point.
    let (g, _) = dex();
    for bound in [2.0, 3.0, 4.0, 5.0, 6.0, 10.0, 100.0] {
        let platform = Platform::single_pair(bound, bound);
        assert_mutual_oracle(&g, &platform);
    }
}
