//! Ad-hoc probe: times both exact backends per seed on the proptest-style
//! instance distribution (`--tight` switches to the 60%-of-total-volume
//! memory bound). Useful when tuning solver budgets; not part of CI.
use mals_exact::{BranchAndBound, ExactBackend, MilpBackend, SolveLimits};
use mals_gen::{DaggenParams, WeightRanges};
use mals_platform::Platform;
use mals_util::Pcg64;
use std::time::Instant;

fn main() {
    let tight: bool = std::env::args().any(|a| a == "--tight");
    for seed in 0..50u64 {
        let mut rng = Pcg64::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let size = 4 + (seed % 7) as usize; // 4..=10
        let g = mals_gen::daggen::generate(
            &DaggenParams {
                size,
                width: 0.5,
                density: 0.5,
                jumps: 1 + (seed % 3) as usize,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let bound = if tight {
            (0.6 * g.total_file_size()).max(g.max_mem_req())
        } else {
            g.total_file_size().max(1.0)
        };
        let platform = Platform::single_pair(bound, bound);
        let limits = SolveLimits::default();
        let t0 = Instant::now();
        let milp = MilpBackend.solve(&g, &platform, &limits);
        let t_milp = t0.elapsed();
        let t1 = Instant::now();
        let bb = ExactBackend::solve(&BranchAndBound::default(), &g, &platform, &limits);
        let t_bb = t1.elapsed();
        println!(
            "seed {seed:2} n={size:2} milp {t_milp:>12?} nodes {:>7} -> {:?} | bb {t_bb:>10?} nodes {:>6} -> {:?}",
            milp.nodes(),
            milp.makespan(),
            bb.nodes(),
            bb.makespan()
        );
    }
}
