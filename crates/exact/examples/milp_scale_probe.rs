//! Ad-hoc probe: MILP backend wall-clock versus instance size at three
//! memory regimes (ample / 70% / 50% of HEFT's requirement). Used to pick
//! the backend's size guard; not part of CI.
use mals_exact::{ExactBackend, MilpBackend, SolveLimits};
use mals_gen::SetParams;
use mals_platform::Platform;
use mals_sched::{Heft, Scheduler};
use mals_sim::memory_peaks;
use std::time::Instant;

fn main() {
    for size in [12usize, 14, 16, 18, 20] {
        let g = SetParams::small_rand()
            .scaled(1, size)
            .generate()
            .pop()
            .unwrap();
        let unbounded = Platform::single_pair(f64::INFINITY, f64::INFINITY);
        let heft = Heft::new().schedule(&g, &unbounded).unwrap();
        let need = memory_peaks(&g, &unbounded, &heft).max();
        for frac in [1.1, 0.7, 0.5] {
            let bound = frac * need;
            let platform = Platform::single_pair(bound, bound);
            let limits = SolveLimits::with_node_limit(20_000);
            let t0 = Instant::now();
            let outcome = MilpBackend.solve(&g, &platform, &limits);
            println!(
                "n={size:2} frac={frac:.1} {:>12?} nodes {:>7} proven={} makespan={:?}",
                t0.elapsed(),
                outcome.nodes(),
                outcome.is_proven(),
                outcome.makespan()
            );
        }
    }
}
