//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generate a `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rng.usize_in(self.size.start, self.size.end - 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_respects_size_and_element_ranges() {
        let mut rng = TestRng::from_name("vec");
        let strategy = vec(0.0f64..50.0, 0..12);
        let mut seen_empty = false;
        for _ in 0..200 {
            let v = strategy.generate(&mut rng);
            assert!(v.len() < 12);
            seen_empty |= v.is_empty();
            assert!(v.iter().all(|x| (0.0..50.0).contains(x)));
        }
        assert!(seen_empty, "length 0 should occur within 200 draws");
    }
}
