//! Offline drop-in subset of the [proptest](https://docs.rs/proptest)
//! property-testing API.
//!
//! The MALS workspace must build in environments with no access to a crates
//! registry, so `tests/properties.rs` depends on this shim (renamed to
//! `proptest` in the workspace manifest) instead of the real crate. It
//! implements the API surface that file uses: the [`Strategy`](strategy::Strategy)
//! trait with [`prop_map`](strategy::Strategy::prop_map), [`any`](strategy::any),
//! numeric range strategies, tuple strategies, [`collection::vec`],
//! [`ProptestConfig`](test_runner::ProptestConfig) and the [`proptest!`],
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from real proptest, by design:
//!
//! * inputs are drawn from a fixed-seed [SplitMix64](https://prng.di.unimi.it/splitmix64.c)
//!   stream (seeded from the test name), so every run of a test sees the
//!   same cases — failures are exactly reproducible but the search never
//!   varies between runs;
//! * there is **no shrinking**: a failing case is reported as a plain panic
//!   by the surrounding libtest harness with the case index in the message.
//!
//! Once a registry is reachable, point the `proptest` entry of
//! `[workspace.dependencies]` back at crates.io and everything recompiles
//! unchanged.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `use proptest::prelude::*;` surface.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Strategies: composable recipes for generating random test inputs.
pub mod strategies {
    pub use crate::strategy::*;
}

/// Assert a condition inside a [`proptest!`] body.
///
/// Real proptest records the failure and shrinks; the shim panics via
/// [`assert!`], which libtest reports together with the case counter that
/// [`proptest!`] appends to the panic message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a [`proptest!`] body (see [`prop_assert!`]).
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Define property tests.
///
/// Each `fn name(arg in strategy, ...) { body }` item expands to a regular
/// `#[test]`-style function that draws `ProptestConfig::cases` inputs from
/// the strategies and runs the body on each. An optional leading
/// `#![proptest_config(expr)]` applies to every test in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                    )+
                    let run = move || $body;
                    if let Err(payload) = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(run),
                    ) {
                        eprintln!(
                            "proptest shim: property `{}` failed at case {}/{} (fixed seed, rerun reproduces it)",
                            stringify!($name), case + 1, config.cases,
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
