//! The [`Strategy`] trait and the strategy combinators the workspace uses.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type from a [`TestRng`].
///
/// Mirrors proptest's trait of the same name, minus shrinking: `generate`
/// plays the role of `new_tree(..).current()`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy (proptest's `Arbitrary`).
pub trait Arbitrary {
    /// Draw an unconstrained value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as u32
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for a type: `any::<u64>()` etc.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty usize range strategy");
        rng.usize_in(self.start, self.end - 1)
    }
}

impl Strategy for RangeInclusive<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty usize range strategy");
        rng.usize_in(*self.start(), *self.end())
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start() <= self.end(), "empty f64 range strategy");
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_name("ranges");
        for _ in 0..1000 {
            let u = (4usize..=18).generate(&mut rng);
            assert!((4..=18).contains(&u));
            let x = (0.2f64..1.5).generate(&mut rng);
            assert!((0.2..1.5).contains(&x));
            let h = (3usize..7).generate(&mut rng);
            assert!((3..7).contains(&h));
        }
    }

    #[test]
    fn ranges_cover_both_endpoints() {
        let mut rng = TestRng::from_name("endpoints");
        let draws: Vec<usize> = (0..500).map(|_| (1usize..=3).generate(&mut rng)).collect();
        assert!(draws.contains(&1) && draws.contains(&2) && draws.contains(&3));
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let mut rng = TestRng::from_name("compose");
        let strategy = (any::<u64>(), 1usize..=4).prop_map(|(seed, n)| (seed % 10, n * 2));
        for _ in 0..100 {
            let (s, n) = strategy.generate(&mut rng);
            assert!(s < 10);
            assert!([2, 4, 6, 8].contains(&n));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let draw = || {
            let mut rng = TestRng::from_name("same-name");
            (0..10)
                .map(|_| any::<u64>().generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
        let mut other = TestRng::from_name("other-name");
        let other_draws: Vec<u64> = (0..10).map(|_| any::<u64>().generate(&mut other)).collect();
        assert_ne!(draw(), other_draws);
    }
}
