//! Test configuration and the deterministic RNG behind the shim.

/// Per-test configuration (subset of proptest's struct of the same name).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of input cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the shim keeps the same default so
        // swapping the real crate back in does not change test costs.
        ProptestConfig { cases: 256 }
    }
}

/// A [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator seeded
/// from the property's name, so each property sees a fixed, reproducible
/// input stream.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[lo, hi]` (both inclusive).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u64 + 1;
        lo + (self.next_u64() % span) as usize
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_f64_stays_in_unit_interval() {
        let mut rng = TestRng::from_name("unit");
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn default_config_matches_real_proptest() {
        assert_eq!(ProptestConfig::default().cases, 256);
        assert_eq!(ProptestConfig::with_cases(48).cases, 48);
    }
}
