//! Protocol conformance and multi-client integration tests for the `malsd`
//! daemon: hostile frames must answer structured errors without killing the
//! connection, version negotiation must round-trip, and concurrent clients
//! must each get back exactly their own responses.

use mals::experiments::daemon::{Daemon, DaemonConfig, DaemonHandle};
use mals::experiments::service::example_request;
use mals::prelude::*;
use mals::util::{write_frame, FrameReader};
use std::net::TcpStream;

fn start_daemon(config: DaemonConfig) -> DaemonHandle {
    Daemon::start(config).expect("daemon start")
}

fn connect(handle: &DaemonHandle) -> (FrameReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    let write_half = stream.try_clone().expect("clone");
    (FrameReader::new(stream), write_half)
}

/// Reads one frame, retrying through timeouts (the client sockets here are
/// blocking, so retries only absorb interrupted reads).
fn read_one(reader: &mut FrameReader<TcpStream>) -> Json {
    loop {
        match reader.read_frame() {
            Ok(Some(text)) => return Json::parse(&text).expect("response frames are JSON"),
            Ok(None) => panic!("connection closed while a response was due"),
            Err(e) if e.is_retryable() => continue,
            Err(e) => panic!("read failed: {e}"),
        }
    }
}

fn request_frame(id: u64, request: &SolveRequest) -> String {
    let mut json = request.to_json();
    let Json::Obj(pairs) = &mut json else {
        unreachable!("requests serialise to objects")
    };
    pairs.insert(0, ("id".to_string(), Json::Num(id as f64)));
    json.to_compact()
}

fn error_code(response: &Json) -> Option<&str> {
    response.get("error")?.get("code")?.as_str()
}

#[test]
fn malformed_frames_answer_bad_request_without_killing_the_connection() {
    let handle = start_daemon(DaemonConfig {
        threads: 1,
        ..DaemonConfig::default()
    });
    let (mut reader, mut write_half) = connect(&handle);
    for hostile in [
        "this is not json",
        "{\"unterminated\": ",
        "[1, 2, 3]",                // an array is not a request object
        "{\"solver\": 42}",         // wrong type
        "{}",                       // no solver at all
        "{\"op\": \"no_such_op\"}", // unknown control op
    ] {
        write_frame(&mut write_half, hostile).unwrap();
        let response = read_one(&mut reader);
        assert_eq!(
            error_code(&response),
            Some("bad_request"),
            "for {hostile:?}"
        );
    }
    // The connection survived all of it: a well-formed request still solves.
    write_frame(&mut write_half, &request_frame(7, &example_request())).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(7));
    assert_eq!(response.get("valid").and_then(Json::as_bool), Some(true));
    handle.shutdown();
    handle.join();
}

#[test]
fn oversized_frames_are_rejected_and_the_next_frame_parses() {
    let handle = start_daemon(DaemonConfig {
        threads: 1,
        max_frame_bytes: 4 * 1024,
        ..DaemonConfig::default()
    });
    let (mut reader, mut write_half) = connect(&handle);
    let huge = format!("{{\"pad\": \"{}\"}}", "x".repeat(64 * 1024));
    write_frame(&mut write_half, &huge).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(error_code(&response), Some("bad_request"));
    assert!(
        response
            .get("error")
            .and_then(|e| e.get("message"))
            .and_then(Json::as_str)
            .unwrap()
            .contains("byte"),
        "{response:?}"
    );
    write_frame(&mut write_half, &request_frame(1, &example_request())).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(1));
    assert_eq!(response.get("valid").and_then(Json::as_bool), Some(true));
    handle.shutdown();
    handle.join();
}

#[test]
fn truncated_final_frames_are_dropped_and_the_daemon_survives() {
    let handle = start_daemon(DaemonConfig {
        threads: 1,
        ..DaemonConfig::default()
    });
    {
        let (mut reader, mut write_half) = connect(&handle);
        write_frame(&mut write_half, &request_frame(3, &example_request())).unwrap();
        // A frame cut off mid-document, never terminated: the daemon must
        // not act on it (and must not crash).
        use std::io::Write;
        write_half.write_all(b"{\"solver\": \"memh").unwrap();
        let response = read_one(&mut reader);
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(3));
        write_half.shutdown(std::net::Shutdown::Write).unwrap();
        // No second response: the truncated bytes were dropped at EOF.
        assert!(matches!(reader.read_frame(), Ok(None)), "expected EOF");
    }
    // The daemon still serves fresh connections afterwards.
    let (mut reader, mut write_half) = connect(&handle);
    write_frame(&mut write_half, &request_frame(4, &example_request())).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(4));
    handle.shutdown();
    handle.join();
}

#[test]
fn version_negotiation_round_trips() {
    let handle = start_daemon(DaemonConfig {
        threads: 1,
        ..DaemonConfig::default()
    });
    let (mut reader, mut write_half) = connect(&handle);

    // The canonical encoding declares v1 and the response echoes it.
    let framed = request_frame(10, &example_request());
    assert!(
        framed.contains("\"v\": 1") || framed.contains("\"v\":1"),
        "{framed}"
    );
    write_frame(&mut write_half, &framed).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(
        response.get("v").and_then(Json::as_u64),
        Some(PROTOCOL_VERSION)
    );
    assert_eq!(response.get("valid").and_then(Json::as_bool), Some(true));

    // A pre-versioning document (no "v") is treated as v1.
    let mut json = example_request().to_json();
    if let Json::Obj(pairs) = &mut json {
        pairs.retain(|(k, _)| k != "v");
        pairs.insert(0, ("id".to_string(), Json::Num(11.0)));
    }
    write_frame(&mut write_half, &json.to_compact()).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(11));
    assert_eq!(response.get("valid").and_then(Json::as_bool), Some(true));

    // An unknown version is a structured bad_request, and the connection
    // survives to speak v1 again.
    let mut json = example_request().to_json();
    if let Json::Obj(pairs) = &mut json {
        pairs.retain(|(k, _)| k != "v");
        pairs.insert(0, ("v".to_string(), Json::Num(99.0)));
        pairs.insert(0, ("id".to_string(), Json::Num(12.0)));
    }
    write_frame(&mut write_half, &json.to_compact()).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(response.get("id").and_then(Json::as_u64), Some(12));
    assert_eq!(error_code(&response), Some("bad_request"));
    write_frame(&mut write_half, &request_frame(13, &example_request())).unwrap();
    let response = read_one(&mut reader);
    assert_eq!(response.get("valid").and_then(Json::as_bool), Some(true));
    handle.shutdown();
    handle.join();
}

#[test]
fn eight_concurrent_clients_each_get_their_own_validated_responses() {
    let handle = start_daemon(DaemonConfig {
        queue_capacity: 256,
        threads: 1,
        ..DaemonConfig::default()
    });
    let addr = handle.addr();
    const CLIENTS: usize = 8;
    const PER_CLIENT: usize = 6;
    std::thread::scope(|scope| {
        for client in 0..CLIENTS {
            scope.spawn(move || {
                let stream = TcpStream::connect(addr).expect("connect");
                let mut write_half = stream.try_clone().expect("clone");
                let mut reader = FrameReader::new(stream);
                // Alternate solvers so the shared queue interleaves
                // genuinely different work across connections.
                for i in 0..PER_CLIENT {
                    let mut request = example_request();
                    if i % 2 == 1 {
                        request.solver = "memminmin".into();
                    }
                    let id = (client * 1000 + i) as u64;
                    write_frame(&mut write_half, &request_frame(id, &request)).unwrap();
                    let response = read_one(&mut reader);
                    assert_eq!(
                        response.get("id").and_then(Json::as_u64),
                        Some(id),
                        "client {client} got someone else's response"
                    );
                    assert_eq!(
                        response.get("valid").and_then(Json::as_bool),
                        Some(true),
                        "client {client} request {i} did not validate"
                    );
                    // The embedded schedule re-validates independently.
                    let report = SolveReport::from_json(&response).expect("a report frame");
                    let schedule = report.schedule.expect("a schedule");
                    let verdict = validate(&request.graph, &request.platform, &schedule);
                    assert!(verdict.is_valid(), "{:?}", verdict.errors);
                }
            });
        }
    });
    handle.shutdown();
    handle.join();
}

#[test]
fn pipelined_requests_on_one_connection_return_in_order() {
    let handle = start_daemon(DaemonConfig {
        queue_capacity: 64,
        threads: 1,
        ..DaemonConfig::default()
    });
    let (mut reader, mut write_half) = connect(&handle);
    let request = example_request();
    for id in 0..10u64 {
        write_frame(&mut write_half, &request_frame(id, &request)).unwrap();
    }
    for id in 0..10u64 {
        let response = read_one(&mut reader);
        assert_eq!(response.get("id").and_then(Json::as_u64), Some(id));
    }
    handle.shutdown();
    handle.join();
}

#[test]
fn graceful_shutdown_drains_admitted_work_before_closing() {
    let handle = start_daemon(DaemonConfig {
        queue_capacity: 64,
        threads: 1,
        ..DaemonConfig::default()
    });
    let (mut reader, mut write_half) = connect(&handle);
    // Admit a few requests, then ask for shutdown before reading anything.
    for id in 0..4u64 {
        write_frame(&mut write_half, &request_frame(id, &example_request())).unwrap();
    }
    write_frame(&mut write_half, "{\"op\": \"shutdown\"}").unwrap();
    // Every admitted request is answered (reports), plus the shutdown ack;
    // order between the ack and the reports is not guaranteed.
    let mut reports = 0;
    let mut acks = 0;
    for _ in 0..5 {
        let response = read_one(&mut reader);
        if response.get("op").and_then(Json::as_str) == Some("shutting_down") {
            acks += 1;
        } else {
            assert_eq!(response.get("valid").and_then(Json::as_bool), Some(true));
            reports += 1;
        }
    }
    assert_eq!((reports, acks), (4, 1));
    // After the drain the daemon refuses new connections or work.
    assert!(handle.is_shutting_down());
    handle.join();
}
