//! Integration and property tests for the auxiliary subsystems: execution
//! statistics replay, text serialisation of DAGs, structured graph shapes and
//! the minimum-memory bisection.

use mals::dag::serialize;
use mals::experiments::minimum_memory;
use mals::gen::{chain, fork_join, DaggenParams, ShapeWeights, WeightRanges};
use mals::prelude::*;
use mals::sim::memory_peaks;
use mals::sim::replay::execution_stats;
use proptest::prelude::*;

fn random_graph(seed: u64, size: usize) -> TaskGraph {
    let mut rng = Pcg64::new(seed);
    mals::gen::daggen::generate(
        &DaggenParams {
            size,
            width: 0.4,
            density: 0.5,
            jumps: 3,
        },
        &WeightRanges::small_rand(),
        &mut rng,
    )
}

#[test]
fn execution_stats_agree_with_validator_on_linalg() {
    let graph = lu_dag(4, &KernelCosts::table1());
    let platform = Platform::mirage(f64::INFINITY, f64::INFINITY);
    let schedule = MemMinMin::new().schedule(&graph, &platform).unwrap();
    let report = validate(&graph, &platform, &schedule);
    let stats = execution_stats(&graph, &platform, &schedule);
    assert!(report.is_valid());
    assert_eq!(stats.makespan, report.makespan);
    assert_eq!(stats.memories[0].peak, report.peaks.blue);
    assert_eq!(stats.memories[1].peak, report.peaks.red);
    // Every task is accounted to exactly one processor.
    let total_tasks: usize = stats.processors.iter().map(|p| p.tasks).sum();
    assert_eq!(total_tasks, graph.n_tasks());
    // Parallelism can never exceed the processor count.
    assert!(stats.peak_parallelism <= platform.n_procs());
}

#[test]
fn minimum_memory_is_consistent_with_sweeps() {
    let graph = random_graph(0xFEED, 25);
    let platform = Platform::single_pair(0.0, 0.0);
    let unbounded = platform.unbounded();
    let heft = Heft::new().schedule(&graph, &unbounded).unwrap();
    let upper = memory_peaks(&graph, &unbounded, &heft).max() * 1.2;
    let ctx = SolveCtx::sequential();
    for scheduler in [&MemHeft::new() as &dyn Solver, &MemMinMin::new()] {
        let result = minimum_memory(&graph, &platform, scheduler, &ctx, upper, 0.25);
        let min = result
            .min_memory
            .expect("feasible at 1.2x HEFT's footprint");
        // Just above the reported minimum the scheduler succeeds...
        let above = platform.with_memory_bounds(min + 0.3, min + 0.3);
        assert!(
            scheduler.solve(&graph, &above, &ctx).schedule.is_some(),
            "{}",
            scheduler.name()
        );
        // ...and comfortably below it, it fails.
        let below = platform.with_memory_bounds(min * 0.5, min * 0.5);
        assert!(
            scheduler.solve(&graph, &below, &ctx).schedule.is_none(),
            "{}",
            scheduler.name()
        );
    }
}

#[test]
fn chain_needs_little_memory_fork_join_needs_fanout() {
    let platform = Platform::single_pair(0.0, 0.0);
    let weights = ShapeWeights::default();
    let ctx = SolveCtx::sequential();
    // A chain never needs more than two files resident at once under MemHEFT.
    let chain_graph = chain(12, &weights);
    let chain_min = minimum_memory(&chain_graph, &platform, &MemHeft::new(), &ctx, 24.0, 0.1)
        .min_memory
        .unwrap();
    assert!(chain_min <= 2.0 + 0.2, "chain minimum {chain_min}");
    // A fork-join of width w needs at least w files on the fork's side.
    let fj = fork_join(6, &weights);
    let fj_min = minimum_memory(&fj, &platform, &MemHeft::new(), &ctx, 24.0, 0.1)
        .min_memory
        .unwrap();
    assert!(fj_min >= 6.0 - 0.2, "fork-join minimum {fj_min}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Serialisation round-trips arbitrary generated DAGs exactly.
    #[test]
    fn serialization_roundtrip(seed in any::<u64>(), size in 1usize..40) {
        let graph = random_graph(seed, size);
        let text = serialize::to_text(&graph);
        let parsed = serialize::from_text(&text).unwrap();
        prop_assert_eq!(graph, parsed);
    }

    /// Execution statistics are internally consistent for every schedule the
    /// heuristics produce: utilisations in [0, 1], busy time bounded by the
    /// makespan, transfer counts bounded by the edge count.
    #[test]
    fn execution_stats_invariants(seed in any::<u64>(), size in 2usize..25) {
        let graph = random_graph(seed, size);
        let platform = Platform::new(2, 2, 1e6, 1e6).unwrap();
        let schedule = MemMinMin::new().schedule(&graph, &platform).unwrap();
        let stats = execution_stats(&graph, &platform, &schedule);
        prop_assert!(stats.makespan > 0.0);
        for proc in &stats.processors {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&proc.utilization));
            prop_assert!(proc.busy <= stats.makespan + 1e-9);
        }
        prop_assert!(stats.transfers <= graph.n_edges());
        prop_assert!(stats.peak_parallelism <= platform.n_procs());
        prop_assert!(stats.average_parallelism <= stats.peak_parallelism as f64 + 1e-9);
        for mem in &stats.memories {
            prop_assert!(mem.average <= mem.peak + 1e-9);
        }
    }

    /// The DOT export always contains one node line per task and one edge
    /// line per edge.
    #[test]
    fn dot_export_covers_graph(seed in any::<u64>(), size in 1usize..30) {
        let graph = random_graph(seed, size);
        let dot = mals::dag::dot::to_dot(&graph);
        prop_assert_eq!(dot.matches(" [label=").count(), graph.n_tasks() + graph.n_edges());
        prop_assert_eq!(dot.matches(" -> ").count(), graph.n_edges());
    }
}
