//! Smoke tests for the figure-reproduction entry points: tiny configurations
//! of every figure complete quickly and exhibit the qualitative shape the
//! paper reports (success rates grow with memory, the optimal dominates the
//! heuristics, memory-aware heuristics keep working below the baselines'
//! footprints).

use mals::experiments::csv::{campaign_to_csv, sweep_to_csv};
use mals::experiments::figures::{
    fig10, fig11, fig12, fig14, fig15, Fig10Config, Fig12Config, LinalgConfig, SingleRandConfig,
};
use mals::experiments::table1;
use mals::gen::KernelCosts;
use mals::util::ParallelConfig;

#[test]
fn table1_matches_the_paper() {
    let csv = table1::to_csv(&KernelCosts::table1());
    for needle in [
        "getrf,450",
        "gemm,1450",
        "trsm_l,990",
        "trsm_u,830",
        "potrf,450",
        "syrk,990",
    ] {
        assert!(csv.contains(needle), "missing {needle} in:\n{csv}");
    }
}

#[test]
fn fig10_success_rates_grow_with_memory_and_optimal_dominates() {
    let config = Fig10Config {
        n_dags: 4,
        n_tasks: 12,
        alphas: vec![0.5, 0.75, 1.0],
        optimal_node_limit: 20_000,
        parallel: ParallelConfig::sequential(),
        ..Fig10Config::default()
    };
    let points = fig10(&config);
    assert_eq!(points.len(), 3);
    for name in ["MemHEFT", "MemMinMin", "Optimal(B&B)"] {
        let rates: Vec<f64> = points
            .iter()
            .map(|p| p.method(name).unwrap().success_rate)
            .collect();
        for w in rates.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "{name} success rate decreased: {rates:?}"
            );
        }
        assert!(
            (rates.last().unwrap() - 1.0).abs() < 1e-9,
            "{name} must succeed at alpha=1"
        );
    }
    let last = points.last().unwrap();
    let opt = last
        .method("Optimal(B&B)")
        .unwrap()
        .mean_normalized_makespan
        .unwrap();
    for name in ["MemHEFT", "MemMinMin"] {
        let h = last.method(name).unwrap().mean_normalized_makespan.unwrap();
        assert!(opt <= h + 1e-9, "optimal ({opt}) worse than {name} ({h})");
    }
    // At alpha = 1 MemHEFT behaves exactly like HEFT: normalised makespan 1.
    assert!(
        (last
            .method("MemHEFT")
            .unwrap()
            .mean_normalized_makespan
            .unwrap()
            - 1.0)
            .abs()
            < 1e-9
    );
    assert!(!campaign_to_csv(&points).is_empty());
}

#[test]
fn fig11_sweep_has_paper_shape() {
    let sweep = fig11(&SingleRandConfig {
        n_tasks: 20,
        steps: 10,
        ..SingleRandConfig::fig11_default()
    });
    let top = sweep.points.last().unwrap();
    // With ample memory all four schedulers succeed and none beats the bound.
    for outcome in &top.outcomes {
        let mk = outcome.makespan.expect("ample memory");
        assert!(mk >= sweep.lower_bound - 1e-9);
    }
    // The memory-aware heuristics keep producing schedules at bounds where
    // the oblivious baselines' footprints no longer fit.
    let min_feasible = |name: &str| {
        sweep
            .points
            .iter()
            .filter(|p| p.outcome(name).unwrap().makespan.is_some())
            .map(|p| p.memory_bound)
            .fold(f64::INFINITY, f64::min)
    };
    assert!(min_feasible("MemHEFT") <= min_feasible("HEFT") + 1e-9);
    assert!(min_feasible("MemMinMin") <= min_feasible("MinMin") + 1e-9);
    assert!(!sweep_to_csv(&sweep.points).is_empty());
}

#[test]
fn fig12_memminmin_wins_under_scarce_memory() {
    let config = Fig12Config {
        n_dags: 3,
        n_tasks: 120,
        alphas: vec![0.4, 0.7, 1.0],
        parallel: ParallelConfig::sequential(),
        ..Fig12Config::default()
    };
    let points = fig12(&config);
    // Paper: both heuristics schedule every DAG from ~40% of HEFT's memory.
    for p in &points {
        assert!(
            p.method("MemHEFT").unwrap().success_rate >= 0.99,
            "alpha {}",
            p.alpha
        );
        assert!(
            p.method("MemMinMin").unwrap().success_rate >= 0.99,
            "alpha {}",
            p.alpha
        );
    }
    // Paper: MemMinMin is clearly the best heuristic when memory is critical.
    let scarce = &points[0];
    let memminmin = scarce
        .method("MemMinMin")
        .unwrap()
        .mean_normalized_makespan
        .unwrap();
    let memheft = scarce
        .method("MemHEFT")
        .unwrap()
        .mean_normalized_makespan
        .unwrap();
    assert!(
        memminmin <= memheft + 1e-9,
        "MemMinMin ({memminmin}) should not lose to MemHEFT ({memheft}) under scarce memory"
    );
}

#[test]
fn linalg_figures_memheft_survives_tighter_memory_than_memminmin() {
    // Paper (Figures 14/15): MemHEFT keeps producing feasible schedules with
    // far less memory than MemMinMin on the factorisation DAGs.
    for sweep in [
        fig14(&LinalgConfig {
            tiles: 5,
            steps: 12,
            parallel: ParallelConfig::sequential(),
        }),
        fig15(&LinalgConfig {
            tiles: 6,
            steps: 12,
            parallel: ParallelConfig::sequential(),
        }),
    ] {
        let min_feasible = |name: &str| {
            sweep
                .points
                .iter()
                .filter(|p| p.outcome(name).unwrap().makespan.is_some())
                .map(|p| p.memory_bound)
                .fold(f64::INFINITY, f64::min)
        };
        assert!(
            min_feasible("MemHEFT") <= min_feasible("MemMinMin"),
            "MemHEFT should tolerate at most as much memory pressure as MemMinMin"
        );
        // Both eventually succeed.
        assert!(min_feasible("MemHEFT").is_finite());
        assert!(min_feasible("MemMinMin").is_finite());
    }
}
