//! Registry conformance suite: every solver registered in
//! `mals::exact::solver_registry()` must honour the `Solver` contract —
//! schedules pass the independent validator, the declared optimality status
//! is never stronger than what was proven (exact `Optimal` claims are
//! cross-checked against the B&B oracle), and the JSON service surface
//! round-trips requests and reports bit-for-bit.

use mals::prelude::*;
use proptest::prelude::*;

fn registry() -> mals::sched::SolverRegistry {
    solver_registry()
}

fn ctx() -> SolveCtx<'static> {
    SolveCtx::with_limits(SolveLimits::with_node_limit(100_000))
}

/// The platform a solver's schedule must validate against: the bounded
/// platform for memory-aware solvers, the unbounded one for the baselines
/// (which ignore the bounds by contract).
fn validation_platform(info: &mals::sched::SolverInfo, platform: &Platform) -> Platform {
    if info.memory_aware {
        platform.clone()
    } else {
        platform.unbounded()
    }
}

/// Checks one solver on one instance; returns the makespan when a schedule
/// was produced. `optimal_reference`: the B&B-certified optimum (None when
/// the instance is infeasible).
fn check_solver(
    entry: &mals::sched::SolverEntry,
    graph: &TaskGraph,
    platform: &Platform,
    optimal_reference: Option<f64>,
) -> Option<f64> {
    let key = entry.info.key;
    let outcome = entry.build(42).solve(graph, platform, &ctx());
    // Status and schedule presence must agree.
    assert_eq!(
        outcome.schedule.is_some(),
        outcome.status.carries_schedule(),
        "{key}: status {} vs schedule presence",
        outcome.status
    );
    // Heuristics never claim proofs; exact solvers never claim `Heuristic`.
    if entry.info.exact {
        assert_ne!(outcome.status, OptimalityStatus::Heuristic, "{key}");
    } else if outcome.schedule.is_some() {
        assert_eq!(outcome.status, OptimalityStatus::Heuristic, "{key}");
    }
    let schedule = outcome.schedule.as_ref()?;
    // Every produced schedule passes the independent validator.
    let report = validate(graph, &validation_platform(&entry.info, platform), schedule);
    assert!(report.is_valid(), "{key}: {:?}", report.errors);
    // An `Optimal` claim must match the B&B oracle exactly.
    if outcome.status == OptimalityStatus::Optimal {
        let reference = optimal_reference.expect("oracle disagrees: instance is infeasible");
        assert!(
            (schedule.makespan() - reference).abs() < 1e-6,
            "{key}: claimed optimum {} but B&B proves {reference}",
            schedule.makespan()
        );
    }
    // No schedule may beat the certified optimum.
    if let Some(reference) = optimal_reference {
        if entry.info.memory_aware {
            assert!(
                schedule.makespan() >= reference - 1e-6,
                "{key}: makespan {} beats the optimum {reference}",
                schedule.makespan()
            );
        }
    }
    Some(schedule.makespan())
}

/// The B&B-certified optimal makespan of an instance, if feasible.
fn bb_reference(graph: &TaskGraph, platform: &Platform) -> Option<f64> {
    let outcome = registry()
        .build("bb")
        .unwrap()
        .solve(graph, platform, &ctx());
    assert!(
        outcome.is_optimal() || outcome.status == OptimalityStatus::Infeasible,
        "oracle did not settle the instance"
    );
    outcome.makespan()
}

#[test]
fn every_registered_solver_conforms_on_the_toy_dag() {
    let (graph, _) = dex();
    for bound in [4.0, 5.0, 8.0] {
        let platform = Platform::single_pair(bound, bound);
        let reference = bb_reference(&graph, &platform);
        for entry in registry().entries() {
            check_solver(entry, &graph, &platform, reference);
        }
    }
}

#[test]
fn infeasible_instances_are_never_given_schedules_by_exact_solvers() {
    let (graph, _) = dex();
    let hopeless = Platform::single_pair(2.0, 2.0);
    for entry in registry().entries() {
        if !entry.info.exact {
            continue;
        }
        let outcome = entry.build(0).solve(&graph, &hopeless, &ctx());
        assert_eq!(
            outcome.status,
            OptimalityStatus::Infeasible,
            "{}",
            entry.info.key
        );
    }
}

#[test]
fn engine_batch_api_agrees_with_single_solves() {
    let graphs: Vec<TaskGraph> = (0..3)
        .map(|i| {
            let mut rng = Pcg64::new(100 + i);
            mals::gen::daggen::generate(
                &DaggenParams::small_rand(),
                &WeightRanges::small_rand(),
                &mut rng,
            )
        })
        .collect();
    let platform = Platform::new(2, 2, 150.0, 150.0).unwrap();
    let engine = mals::exact::engine(EngineConfig::default().with_threads(2));
    let batch = engine.solve_batch("memheft", &graphs, &platform).unwrap();
    for (graph, outcome) in graphs.iter().zip(&batch) {
        let single = engine.solve("memheft", graph, &platform).unwrap();
        assert_eq!(single.schedule, outcome.schedule);
    }
}

fn small_instance(seed: u64, n_tasks: usize) -> (TaskGraph, Platform) {
    let mut rng = Pcg64::new(seed);
    let graph = mals::gen::daggen::generate(
        &DaggenParams {
            size: n_tasks,
            width: 0.5,
            density: 0.5,
            jumps: 2,
        },
        &WeightRanges::small_rand(),
        &mut rng,
    );
    // Bound at 80% of HEFT's own footprint so the memory logic does real
    // work but most instances stay feasible.
    let open = Platform::single_pair(0.0, 0.0);
    let reference = mals::experiments::heft_reference(&graph, &open);
    let bound = (reference.heft_peaks.max() * 0.8).max(1.0);
    (graph, open.with_memory_bounds(bound, bound))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conformance sweep over random small instances: every registered
    /// solver validates and honours its status; exact `Optimal` claims
    /// agree with the B&B oracle.
    #[test]
    fn registry_conformance_on_random_instances(seed in any::<u64>(), n_tasks in 4usize..8) {
        let (graph, platform) = small_instance(seed, n_tasks);
        let reference = bb_reference(&graph, &platform);
        for entry in registry().entries() {
            check_solver(entry, &graph, &platform, reference);
        }
    }

    /// `SolveRequest` round-trips through JSON text exactly.
    #[test]
    fn request_json_roundtrip(seed in any::<u64>(), n_tasks in 1usize..12,
                              threads in 0usize..8, node_limit in 1usize..1_000_000,
                              deadline in 0usize..100_000, has_deadline in any::<bool>(),
                              portfolio in any::<bool>()) {
        let (graph, platform) = small_instance(seed, n_tasks.max(4));
        let request = SolveRequest {
            graph,
            platform,
            solver: if portfolio { "portfolio".into() } else { "memheft-rand".into() },
            threads,
            limits: SolveLimits::with_node_limit(node_limit as u64),
            seed: Some(seed),
            solvers: if portfolio {
                vec!["memheft".into(), "memminmin".into()]
            } else {
                Vec::new()
            },
            deadline_ms: has_deadline.then_some(deadline as u64),
        };
        let text = request.to_json().to_pretty();
        prop_assert_eq!(SolveRequest::parse(&text).unwrap(), request);
    }

    /// `SolveReport` round-trips through JSON text exactly, and its embedded
    /// schedule re-validates, for every solver on the same request.
    #[test]
    fn report_json_roundtrip(seed in any::<u64>()) {
        let (graph, platform) = small_instance(seed, 6);
        for key in ["memheft", "memminmin", "heft", "bb", "milp", "portfolio"] {
            let request = SolveRequest {
                graph: graph.clone(),
                platform: platform.clone(),
                solver: key.into(),
                threads: 1,
                limits: SolveLimits::with_node_limit(100_000),
                seed: None,
                solvers: Vec::new(),
                deadline_ms: (key == "portfolio").then_some(60_000),
            };
            let report = Service::for_request(&request).try_handle(&request).unwrap();
            let back = SolveReport::parse(&report.to_json().to_pretty()).unwrap();
            prop_assert_eq!(&back, &report, "{} diverged through JSON", key);
            if key == "portfolio" {
                // The member breakdown and deadline echo must survive the
                // round-trip, and a winner implies a matching member entry.
                prop_assert_eq!(back.members.len(), DEFAULT_MEMBERS.len());
                prop_assert_eq!(back.deadline_ms, Some(60_000));
                if let Some(winner) = &back.winner {
                    prop_assert!(back.members.iter().any(|m| &m.key == winner));
                }
            }
            if let Some(schedule) = &back.schedule {
                let check = if key == "heft" { platform.unbounded() } else { platform.clone() };
                prop_assert!(validate(&graph, &check, schedule).is_valid());
            }
        }
    }
}
