//! Equivalence and determinism guard for the online rolling-horizon layer.
//!
//! The online engine (`mals::sched::online`) replays an arrival trace
//! through an event-driven simulator and re-plans the unscheduled suffix.
//! Its built-in oracle: a trace that releases the whole DAG at `t = 0`,
//! replayed with re-plan-on-every-arrival, must reproduce the static
//! solver's schedule **bit for bit** — same placements, same makespan, same
//! memory peaks, and the same `Infeasible` counts on hopeless instances —
//! at thread counts 1, 2 and 4. This suite pins that oracle on random
//! instances (proptest) and a 1000-task fixture, checks the trace JSON
//! round-trip (serialize → parse → byte-identical re-serialization and an
//! identical replay), and verifies that staggered arrivals are honoured:
//! no task ever starts before its release instant.

use mals::gen::{ArrivalProcess, ArrivalTrace, DaggenParams, WeightRanges};
use mals::prelude::*;
use mals::sched::{online, OnlineConfig, OnlineFlavor, OnlineOutcome, ReplanPolicy};
use mals::sim::memory_peaks;
use mals::util::{ParallelConfig, WorkerPool};
use proptest::prelude::*;

fn generated(seed: u64, size: usize) -> TaskGraph {
    let mut rng = Pcg64::new(seed);
    mals::gen::daggen::generate(
        &DaggenParams::large_rand().with_size(size),
        &WeightRanges::small_rand(),
        &mut rng,
    )
}

/// Bounds both memories at `fraction` of the memory-oblivious HEFT
/// footprint (the campaign normalisation).
fn bounded(graph: &TaskGraph, platform: &Platform, fraction: f64) -> Platform {
    let unbounded = platform.unbounded();
    let peaks = memory_peaks(
        graph,
        &unbounded,
        &Heft::new().schedule(graph, &unbounded).unwrap(),
    );
    let bound = (peaks.max() * fraction).ceil();
    platform.with_memory_bounds(bound, bound)
}

fn replay_with_threads(
    graph: &TaskGraph,
    platform: &Platform,
    trace: &ArrivalTrace,
    config: OnlineConfig,
    threads: usize,
) -> Result<OnlineOutcome, String> {
    if threads <= 1 {
        online::replay(graph, platform, trace, config, &SolveCtx::sequential())
            .map_err(|e| e.to_string())
    } else {
        let pool = WorkerPool::new(ParallelConfig::with_threads(threads));
        let ctx = SolveCtx::pooled(SolveLimits::default(), &pool);
        online::replay(graph, platform, trace, config, &ctx).map_err(|e| e.to_string())
    }
}

/// The oracle: at-once trace + every-arrival re-planning must equal the
/// static solver exactly — schedule, makespan, peaks and failures alike —
/// at 1, 2 and 4 threads.
fn assert_static_equivalence(graph: &TaskGraph, platform: &Platform) {
    let trace = ArrivalTrace::at_once(graph.n_tasks());
    for flavor in [OnlineFlavor::MemHeft, OnlineFlavor::MemMinMin] {
        let config = OnlineConfig::new(flavor, ReplanPolicy::EveryArrival);
        let static_result = match flavor {
            OnlineFlavor::MemHeft => MemHeft::new().schedule(graph, platform),
            OnlineFlavor::MemMinMin => MemMinMin::new().schedule(graph, platform),
        }
        .map_err(|e| e.to_string());
        for threads in [1usize, 2, 4] {
            let online_result = replay_with_threads(graph, platform, &trace, config, threads)
                .map(|outcome| outcome.schedule);
            match (&online_result, &static_result) {
                (Ok(online_schedule), Ok(static_schedule)) => {
                    assert_eq!(
                        online_schedule, static_schedule,
                        "{flavor:?} at {threads} threads diverged from the static solver"
                    );
                    assert_eq!(
                        memory_peaks(graph, platform, online_schedule),
                        memory_peaks(graph, platform, static_schedule),
                    );
                }
                (Err(online_err), Err(static_err)) => {
                    assert_eq!(
                        online_err, static_err,
                        "{flavor:?} at {threads} threads failed differently"
                    );
                }
                _ => panic!(
                    "{flavor:?} at {threads} threads: online {online_result:?} \
                     vs static {static_result:?}"
                ),
            }
        }
    }
}

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 8usize..=40, 2usize..=6).prop_map(|(seed, size, jumps)| {
        let mut rng = Pcg64::new(seed);
        mals::gen::daggen::generate(
            &DaggenParams {
                size,
                width: 0.4,
                density: 0.5,
                jumps,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        )
    })
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    (1usize..=3, 1usize..=3).prop_map(|(p1, p2)| Platform::new(p1, p2, 0.0, 0.0).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Static equivalence on random instances, from binding (possibly
    /// infeasible) to ample memory bounds.
    #[test]
    fn at_once_replay_matches_static_solvers(
        graph in arb_graph(),
        platform in arb_platform(),
        tight in 0.3f64..0.8,
    ) {
        for fraction in [tight, 1.0 + tight] {
            let bounded = bounded(&graph, &platform, fraction);
            assert_static_equivalence(&graph, &bounded);
        }
    }

    /// A staggered trace never lets a task start before its release, and
    /// the replay is a pure function of (graph, trace, config).
    #[test]
    fn staggered_replay_respects_arrivals_and_is_deterministic(
        seed in any::<u64>(),
        rate in 0.2f64..5.0,
    ) {
        let graph = generated(seed, 60);
        let platform = bounded(&graph, &Platform::new(2, 2, 0.0, 0.0).unwrap(), 1.2);
        let trace = ArrivalProcess::Poisson { rate }.generate(&graph, seed ^ 0xF00D);
        for flavor in [OnlineFlavor::MemHeft, OnlineFlavor::MemMinMin] {
            let config = OnlineConfig::new(flavor, ReplanPolicy::EveryArrival);
            let first = replay_with_threads(&graph, &platform, &trace, config, 1).unwrap();
            let second = replay_with_threads(&graph, &platform, &trace, config, 1).unwrap();
            prop_assert_eq!(&first.schedule, &second.schedule);
            let report = validate(&graph, &platform, &first.schedule);
            prop_assert!(report.is_valid(), "{:?}", report.errors);
            let mut released = vec![0.0f64; graph.n_tasks()];
            for event in trace.events() {
                for &t in &event.tasks {
                    released[t.index()] = event.at;
                }
            }
            for t in graph.task_ids() {
                let placement = first.schedule.task(t).unwrap();
                prop_assert!(placement.start >= released[t.index()] - 1e-12);
            }
        }
    }

    /// Trace JSON round-trip: parse(serialize(trace)) is the same trace,
    /// re-serializes to the identical byte string, and replays to the
    /// identical schedule.
    #[test]
    fn trace_round_trips_through_json(seed in any::<u64>(), batch in 1usize..8) {
        let graph = generated(seed, 40);
        let trace = ArrivalProcess::Bursty { batch, rate: 1.0 }.generate(&graph, seed);
        let text = trace.to_json().to_pretty();
        let parsed = ArrivalTrace::parse(&text).unwrap();
        prop_assert_eq!(&parsed, &trace);
        prop_assert_eq!(parsed.to_json().to_pretty(), text);
        let platform = bounded(&graph, &Platform::new(2, 2, 0.0, 0.0).unwrap(), 1.5);
        let config = OnlineConfig::new(OnlineFlavor::MemHeft, ReplanPolicy::EveryArrival);
        let original = replay_with_threads(&graph, &platform, &trace, config, 1).unwrap();
        let reparsed = replay_with_threads(&graph, &platform, &parsed, config, 1).unwrap();
        prop_assert_eq!(original.schedule, reparsed.schedule);
    }
}

/// The 1000-task fixture of the issue's acceptance criteria: static
/// equivalence at threads 1/2/4 on a LargeRandSet-shaped instance.
#[test]
fn thousand_task_fixture_matches_static_solvers() {
    let graph = generated(7, 1000);
    let platform = bounded(&graph, &Platform::new(2, 2, 0.0, 0.0).unwrap(), 1.0);
    assert_static_equivalence(&graph, &platform);
}

/// Every re-plan policy yields a complete, validator-clean schedule on a
/// staggered trace (policies may trade makespan, never correctness).
#[test]
fn all_policies_produce_valid_schedules() {
    let graph = generated(11, 120);
    let platform = bounded(&graph, &Platform::new(2, 2, 0.0, 0.0).unwrap(), 1.2);
    let trace = ArrivalProcess::Bursty {
        batch: 10,
        rate: 0.5,
    }
    .generate(&graph, 9);
    for policy in [
        ReplanPolicy::EveryArrival,
        ReplanPolicy::EveryK(1),
        ReplanPolicy::EveryK(8),
        ReplanPolicy::Horizon(0.0),
        ReplanPolicy::Horizon(10.0),
    ] {
        for flavor in [OnlineFlavor::MemHeft, OnlineFlavor::MemMinMin] {
            let outcome = replay_with_threads(
                &graph,
                &platform,
                &trace,
                OnlineConfig::new(flavor, policy),
                1,
            )
            .unwrap();
            let report = validate(&graph, &platform, &outcome.schedule);
            assert!(
                report.is_valid(),
                "{flavor:?}/{policy:?}: {:?}",
                report.errors
            );
            assert_eq!(outcome.completions as usize, graph.n_tasks());
        }
    }
}

/// The registry's `online-*` keys go through the full replay machinery and
/// still match their static counterparts through the engine surface.
#[test]
fn registry_online_solvers_match_static_keys() {
    let registry = solver_registry();
    let graph = generated(3, 200);
    let platform = bounded(&graph, &Platform::new(2, 2, 0.0, 0.0).unwrap(), 1.0);
    let ctx = SolveCtx::sequential();
    for (online_key, static_key) in [
        ("online-memheft", "memheft"),
        ("online-memminmin", "memminmin"),
    ] {
        let online_outcome = registry
            .build(online_key)
            .unwrap()
            .solve(&graph, &platform, &ctx);
        let static_outcome = registry
            .build(static_key)
            .unwrap()
            .solve(&graph, &platform, &ctx);
        assert_eq!(
            online_outcome.schedule, static_outcome.schedule,
            "{online_key} diverged from {static_key}"
        );
    }
}
