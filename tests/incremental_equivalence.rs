//! Equivalence guard for the incremental scheduling engine.
//!
//! PR 5 reworked the MemHEFT / MemMinMin / ablation selection loops around
//! an incrementally maintained ready-set and an epoch-based EST cache
//! (`mals_sched::EstCache`), and made the staircase queries indexed. None of
//! that may change a single placement: this suite re-implements the
//! pre-refactor loops *verbatim* on the public `PartialSchedule` API —
//! scan-everything, fresh evaluation at every step, no cache — and asserts
//! that every production scheduler produces **bit-identical** schedules (and
//! identical failures) across random DAGs, thread counts 1/2/4, and memory
//! bounds from hopeless to ample.

use mals::dag::rank;
use mals::gen::{DaggenParams, WeightRanges};
use mals::prelude::*;
use mals::sched::{MemHeftVariant, MemoryPreference, PartialSchedule, PriorityScheme};
use mals::sim::memory_peaks;
use mals::util::ParallelConfig;
use proptest::prelude::*;

/// The pre-refactor MemHEFT selection engine: scan the priority list from
/// the front at every step, evaluate every ready candidate from scratch,
/// commit the first feasible one.
fn reference_priority_schedule(
    graph: &TaskGraph,
    platform: &Platform,
    order: &[TaskId],
    prefer_red: bool,
) -> Result<Schedule, String> {
    graph.validate().map_err(|e| e.to_string())?;
    let mut partial = PartialSchedule::new(graph, platform);
    let mut remaining: Vec<TaskId> = order.to_vec();
    while !remaining.is_empty() {
        let mut committed = None;
        for (position, &task) in remaining.iter().enumerate() {
            if !partial.is_ready(task) {
                continue;
            }
            if let Some(breakdown) = partial.evaluate_best_with(task, prefer_red) {
                partial.commit(task, &breakdown);
                committed = Some(position);
                break;
            }
        }
        match committed {
            Some(position) => {
                remaining.remove(position);
            }
            None => return partial.finish_or_error().map_err(|e| e.to_string()),
        }
    }
    partial.finish_or_error().map_err(|e| e.to_string())
}

/// The pre-refactor MemMinMin loop: evaluate the whole ready list from
/// scratch at every step, commit the globally smallest EFT.
fn reference_memminmin(graph: &TaskGraph, platform: &Platform) -> Result<Schedule, String> {
    graph.validate().map_err(|e| e.to_string())?;
    let mut partial = PartialSchedule::new(graph, platform);
    while !partial.is_complete() {
        match partial.best_ready_choice() {
            Some((task, breakdown)) => {
                partial.commit(task, &breakdown);
            }
            None => return partial.finish_or_error().map_err(|e| e.to_string()),
        }
    }
    partial.finish_or_error().map_err(|e| e.to_string())
}

fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 8usize..=40, 2usize..=6).prop_map(|(seed, size, jumps)| {
        let mut rng = Pcg64::new(seed);
        mals::gen::daggen::generate(
            &DaggenParams {
                size,
                width: 0.4,
                density: 0.5,
                jumps,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        )
    })
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    (1usize..=3, 1usize..=3).prop_map(|(p1, p2)| Platform::new(p1, p2, 0.0, 0.0).unwrap())
}

/// Bounds both memories at `fraction` of the memory-oblivious HEFT
/// footprint (the campaign normalisation), from binding to ample.
fn bounded(graph: &TaskGraph, platform: &Platform, fraction: f64) -> Platform {
    let unbounded = platform.unbounded();
    let peaks = memory_peaks(
        graph,
        &unbounded,
        &Heft::new().schedule(graph, &unbounded).unwrap(),
    );
    let bound = (peaks.max() * fraction).ceil();
    platform.with_memory_bounds(bound, bound)
}

fn assert_matches_reference<S: Scheduler>(
    build: impl Fn(ParallelConfig) -> S,
    reference: &Result<Schedule, String>,
    graph: &TaskGraph,
    platform: &Platform,
) {
    for threads in [1usize, 2, 4] {
        let scheduler = build(ParallelConfig::with_threads(threads));
        let outcome = scheduler
            .schedule(graph, platform)
            .map_err(|e| e.to_string());
        assert!(
            outcome == *reference,
            "{} with {threads} threads diverged from the pre-refactor engine",
            scheduler.name()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// MemHEFT and MemMinMin are bit-identical to the scan-everything
    /// engines on tight (0.3–0.8) and loose (≥ 1.0) memory bounds.
    #[test]
    fn memheft_and_memminmin_match_pre_refactor(
        graph in arb_graph(),
        platform in arb_platform(),
        tight in 0.3f64..0.8,
    ) {
        for fraction in [tight, 1.0 + tight] {
            let bounded = bounded(&graph, &platform, fraction);
            let order = rank::rank_sorted_tasks(&graph);
            let memheft_ref = reference_priority_schedule(&graph, &bounded, &order, false);
            assert_matches_reference(MemHeft::with_parallelism, &memheft_ref, &graph, &bounded);
            let memminmin_ref = reference_memminmin(&graph, &bounded);
            assert_matches_reference(MemMinMin::with_parallelism, &memminmin_ref, &graph, &bounded);
        }
    }

    /// Every ablation variant rides the same engine: each priority scheme
    /// and the red-preference tie-break must match the reference run on its
    /// own priority list.
    #[test]
    fn ablation_variants_match_pre_refactor(
        graph in arb_graph(),
        platform in arb_platform(),
        fraction in 0.4f64..1.4,
    ) {
        let bounded = bounded(&graph, &platform, fraction);
        for (priority, preference) in [
            (PriorityScheme::UpwardRank, MemoryPreference::Blue),
            (PriorityScheme::CriticalPathSum, MemoryPreference::Blue),
            (PriorityScheme::MemoryRequirement, MemoryPreference::Blue),
            (PriorityScheme::UpwardRank, MemoryPreference::Red),
        ] {
            let variant = MemHeftVariant {
                priority,
                memory_preference: preference,
                ..Default::default()
            };
            let order = variant.priority_list(&graph);
            let reference = reference_priority_schedule(
                &graph,
                &bounded,
                &order,
                preference == MemoryPreference::Red,
            );
            assert_matches_reference(
                |parallel| MemHeftVariant { parallel, ..variant },
                &reference,
                &graph,
                &bounded,
            );
        }
    }
}

/// The paper-scale fixture: the exact 1000-task LargeRandSet instance the
/// benches measure, scheduled at a binding 70% bound — the incremental
/// engine must reproduce the scan-everything schedule bit for bit.
#[test]
fn large_rand_1000_tasks_matches_pre_refactor() {
    let graph = mals_bench::large_rand_dag(
        mals_bench::WITHIN_SCHEDULE_TASKS,
        mals_bench::WITHIN_SCHEDULE_SEED,
    );
    let platform = Platform::single_pair(0.0, 0.0);
    let bounded = bounded(&graph, &platform, 0.7);
    let order = rank::rank_sorted_tasks(&graph);
    let reference =
        reference_priority_schedule(&graph, &bounded, &order, false).expect("feasible at 70%");
    let incremental = MemHeft::new().schedule(&graph, &bounded).unwrap();
    assert_eq!(reference, incremental, "n=1000 MemHEFT diverged");
    let reference = reference_memminmin(&graph, &bounded).expect("feasible at 70%");
    let incremental = MemMinMin::new().schedule(&graph, &bounded).unwrap();
    assert_eq!(reference, incremental, "n=1000 MemMinMin diverged");
}
