//! End-to-end integration tests: generate workloads with every generator,
//! schedule them with every scheduler, and validate every schedule with the
//! independent checker.

use mals::exact::BranchAndBound;
use mals::gen::{cholesky_dag, lu_dag, DaggenParams, KernelCosts, SetParams, WeightRanges};
use mals::prelude::*;
use mals::sim::memory_peaks;

fn memory_aware() -> Vec<Box<dyn Scheduler>> {
    vec![Box::new(MemHeft::new()), Box::new(MemMinMin::new())]
}

#[test]
fn random_graphs_all_schedulers_valid_under_generous_memory() {
    let dags = SetParams::small_rand().scaled(6, 25).generate();
    for (i, graph) in dags.iter().enumerate() {
        let platform = Platform::new(2, 2, 400.0, 400.0).unwrap();
        for scheduler in memory_aware() {
            let schedule = scheduler
                .schedule(graph, &platform)
                .unwrap_or_else(|e| panic!("dag {i}, {}: {e}", scheduler.name()));
            let report = validate(graph, &platform, &schedule);
            assert!(
                report.is_valid(),
                "dag {i}, {}: {:?}",
                scheduler.name(),
                report.errors
            );
            assert!(schedule.is_complete(graph));
        }
    }
}

#[test]
fn memory_aware_schedulers_match_baselines_when_memory_is_ample() {
    let dags = SetParams::small_rand().scaled(4, 20).generate();
    for graph in &dags {
        let unbounded = Platform::single_pair(f64::INFINITY, f64::INFINITY);
        let heft = Heft::new().schedule(graph, &unbounded).unwrap();
        let minmin = MinMin::new().schedule(graph, &unbounded).unwrap();
        // With memory bounds at least as large as the total file volume the
        // memory terms can never delay a task, so the memory-aware heuristics
        // reproduce their oblivious counterparts decision for decision.
        let ample = graph.total_file_size();
        let platform = Platform::single_pair(ample, ample);
        let memheft = MemHeft::new().schedule(graph, &platform).unwrap();
        assert_eq!(heft, memheft);
        let memminmin = MemMinMin::new().schedule(graph, &platform).unwrap();
        assert_eq!(minmin, memminmin);
        // The bounds HEFT actually consumed are respected by construction.
        let peaks = memory_peaks(graph, &unbounded, &heft);
        assert!(peaks.max() <= ample + 1e-9);
    }
}

#[test]
fn tighter_memory_never_invalidates_produced_schedules() {
    let graph = {
        let mut rng = Pcg64::new(77);
        mals::gen::daggen::generate(
            &DaggenParams {
                size: 40,
                width: 0.4,
                density: 0.5,
                jumps: 3,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        )
    };
    let unbounded = Platform::single_pair(f64::INFINITY, f64::INFINITY);
    let reference = memory_peaks(
        &graph,
        &unbounded,
        &Heft::new().schedule(&graph, &unbounded).unwrap(),
    );
    let full = reference.max();
    for fraction in [1.0, 0.8, 0.6, 0.4, 0.3] {
        let bound = full * fraction;
        let platform = Platform::single_pair(bound, bound);
        for scheduler in memory_aware() {
            match scheduler.schedule(&graph, &platform) {
                Ok(schedule) => {
                    let report = validate(&graph, &platform, &schedule);
                    assert!(
                        report.is_valid(),
                        "{} at {fraction}: {:?}",
                        scheduler.name(),
                        report.errors
                    );
                    assert!(report.peaks.blue <= bound + 1e-6);
                    assert!(report.peaks.red <= bound + 1e-6);
                }
                Err(ScheduleError::Infeasible { .. }) => {} // allowed under tight bounds
                Err(e) => panic!("{}: {e}", scheduler.name()),
            }
        }
    }
}

#[test]
fn linear_algebra_graphs_schedule_and_validate() {
    let costs = KernelCosts::table1();
    let graphs = vec![
        ("lu", lu_dag(5, &costs)),
        ("cholesky", cholesky_dag(6, &costs)),
    ];
    for (name, graph) in graphs {
        let platform = Platform::mirage(f64::INFINITY, f64::INFINITY);
        let heft = Heft::new().schedule(&graph, &platform).unwrap();
        let peaks = memory_peaks(&graph, &platform, &heft);
        // A budget of 70% of HEFT's footprint must still be schedulable by
        // MemHEFT on these regular graphs.
        let bound = (peaks.max() * 0.7).ceil();
        let bounded = Platform::mirage(bound, bound);
        let schedule = MemHeft::new()
            .schedule(&graph, &bounded)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        let report = validate(&graph, &bounded, &schedule);
        assert!(report.is_valid(), "{name}: {:?}", report.errors);
        assert!(report.peaks.max() <= bound + 1e-6);
        // The memory-aware schedule cannot beat the unconstrained one.
        assert!(schedule.makespan() + 1e-6 >= heft.makespan() * 0.5);
    }
}

#[test]
fn exact_solver_agrees_with_heuristics_on_easy_instances() {
    let dags = SetParams::small_rand().scaled(3, 7).generate();
    for graph in &dags {
        let platform = Platform::single_pair(200.0, 200.0);
        let exact = BranchAndBound::default().solve(graph, &platform);
        let opt = exact.makespan.expect("ample memory");
        for scheduler in memory_aware() {
            let heuristic = scheduler.schedule(graph, &platform).unwrap().makespan();
            assert!(opt <= heuristic + 1e-9);
        }
        // And the optimum respects the platform-level lower bound.
        let lb = mals::exact::makespan_lower_bound(graph, &platform);
        assert!(opt >= lb - 1e-9);
    }
}

#[test]
fn gantt_and_dot_render_for_a_scheduled_lu() {
    let graph = lu_dag(3, &KernelCosts::table1());
    let platform = Platform::mirage(f64::INFINITY, f64::INFINITY);
    let schedule = MemMinMin::new().schedule(&graph, &platform).unwrap();
    let trace = mals::sim::gantt::render_trace(&graph, &platform, &schedule);
    assert!(trace.contains("getrf_0"));
    let dot = mals::dag::dot::to_dot(&graph);
    assert!(dot.contains("digraph"));
    assert!(dot.contains("gemm_0_1_1"));
}
