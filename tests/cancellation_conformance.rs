//! Cancellation conformance suite: every solver registered in
//! `mals::exact::solver_registry()` must honour the cooperative cancellation
//! protocol — a pre-tripped `CancelToken` (or an already-expired `Deadline`)
//! yields `LimitHit` without panicking and without a schedule, a token
//! tripped *mid-solve* from another thread makes the solver return promptly,
//! and no cancelled solve ever emits an invalid schedule.

use mals::prelude::*;
use mals::util::{CancelToken, Deadline};
use proptest::prelude::*;
use std::time::{Duration, Instant};

fn registry() -> mals::sched::SolverRegistry {
    solver_registry()
}

fn ctx() -> SolveCtx<'static> {
    SolveCtx::with_limits(SolveLimits::with_node_limit(100_000))
}

/// Asserts the cancellation contract for one already-cancelled context:
/// no panic (we got an outcome at all), status/schedule agreement, and no
/// schedule smuggled out under a `LimitHit`.
fn check_cancelled_outcome(key: &str, outcome: &SolveOutcome) {
    assert_eq!(
        outcome.schedule.is_some(),
        outcome.status.carries_schedule(),
        "{key}: status {} vs schedule presence",
        outcome.status
    );
    assert!(
        matches!(
            outcome.status,
            OptimalityStatus::LimitHit | OptimalityStatus::Infeasible
        ),
        "{key}: pre-cancelled solve claimed {}",
        outcome.status
    );
    assert!(outcome.schedule.is_none(), "{key}");
}

/// On the known-feasible toy instance every solver must answer a pre-tripped
/// token with exactly `LimitHit`: the quick infeasibility screens pass, so
/// nothing may be claimed.
#[test]
fn pre_tripped_token_yields_limit_hit_for_every_solver() {
    let (graph, _) = dex();
    let platform = Platform::single_pair(5.0, 5.0);
    let token = CancelToken::new();
    token.cancel();
    let ctx = ctx().with_cancel_token(&token);
    for entry in registry().entries() {
        let outcome = entry.build(7).solve(&graph, &platform, &ctx);
        assert_eq!(
            outcome.status,
            OptimalityStatus::LimitHit,
            "{}",
            entry.info.key
        );
        assert!(outcome.schedule.is_none(), "{}", entry.info.key);
    }
}

/// An already-expired deadline is equivalent to a pre-tripped token — same
/// check points, same `LimitHit` answer.
#[test]
fn expired_deadline_yields_limit_hit_for_every_solver() {
    let (graph, _) = dex();
    let platform = Platform::single_pair(5.0, 5.0);
    let ctx = ctx().with_deadline(Deadline::after_millis(0));
    for entry in registry().entries() {
        let outcome = entry.build(7).solve(&graph, &platform, &ctx);
        assert_eq!(
            outcome.status,
            OptimalityStatus::LimitHit,
            "{}",
            entry.info.key
        );
        assert!(outcome.schedule.is_none(), "{}", entry.info.key);
    }
}

/// Mid-solve cancellation from another thread: on a 1000-task instance the
/// solver must notice the trip at its next per-commit / per-node check point
/// and return — with either `LimitHit` (nothing salvaged), `Feasible` (an
/// exact backend keeping its incumbent) or a complete answer if it beat the
/// trip. Any schedule that does come back must validate.
#[test]
fn mid_solve_cancellation_returns_promptly_with_no_invalid_schedule() {
    let graph = mals_bench::large_rand_dag(1000, 42);
    let open = Platform::single_pair(0.0, 0.0);
    let reference = mals::experiments::heft_reference(&graph, &open);
    let bound = reference.heft_peaks.max();
    let platform = open.with_memory_bounds(bound, bound);

    for (key, delay_ms) in [
        ("memheft", 2),
        ("memminmin", 2),
        ("bb", 10),
        ("portfolio", 2),
    ] {
        let token = CancelToken::new();
        let trip = token.clone();
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(delay_ms));
            trip.cancel();
        });
        let solver = registry().build(key).unwrap();
        let base = SolveCtx::with_limits(SolveLimits::with_node_limit(u64::MAX));
        let solve_ctx = base.with_cancel_token(&token);
        let started = Instant::now();
        let outcome = solver.solve(&graph, &platform, &solve_ctx);
        let elapsed = started.elapsed();
        canceller.join().unwrap();
        // "Promptly" with a wide margin: per-commit polling bounds the
        // overrun to one commit, not a full solve (B&B alone would run for
        // hours on a 1000-task instance without the trip).
        assert!(
            elapsed < Duration::from_secs(30),
            "{key}: returned only after {elapsed:?}"
        );
        assert_eq!(
            outcome.schedule.is_some(),
            outcome.status.carries_schedule(),
            "{key}"
        );
        if let Some(schedule) = &outcome.schedule {
            let report = validate(&graph, &platform, schedule);
            assert!(report.is_valid(), "{key}: {:?}", report.errors);
        }
    }
}

/// A token tripped after the solve finished changes nothing: the outcome was
/// already complete, and re-running with a fresh context reproduces it.
#[test]
fn cancellation_after_completion_does_not_retroactively_apply() {
    let (graph, _) = dex();
    let platform = Platform::single_pair(6.0, 6.0);
    let token = CancelToken::new();
    let solve_ctx = ctx().with_cancel_token(&token);
    let outcome = registry()
        .build("memheft")
        .unwrap()
        .solve(&graph, &platform, &solve_ctx);
    token.cancel();
    assert_eq!(outcome.status, OptimalityStatus::Heuristic);
    let fresh = registry()
        .build("memheft")
        .unwrap()
        .solve(&graph, &platform, &ctx());
    assert_eq!(outcome.schedule, fresh.schedule);
}

fn small_instance(seed: u64, n_tasks: usize) -> (TaskGraph, Platform) {
    let mut rng = Pcg64::new(seed);
    let graph = mals::gen::daggen::generate(
        &DaggenParams {
            size: n_tasks,
            width: 0.5,
            density: 0.5,
            jumps: 2,
        },
        &WeightRanges::small_rand(),
        &mut rng,
    );
    let open = Platform::single_pair(0.0, 0.0);
    let reference = mals::experiments::heft_reference(&graph, &open);
    let bound = (reference.heft_peaks.max() * 0.8).max(1.0);
    (graph, open.with_memory_bounds(bound, bound))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Pre-tripped cancellation sweep over random instances and the whole
    /// registry. On a random instance a pre-tripped exact backend may still
    /// return `Infeasible` (its O(n) static memory screen is a real proof
    /// that needs no search), so the contract here is: `LimitHit` or
    /// `Infeasible`, never a schedule, never a panic.
    #[test]
    fn pre_tripped_solvers_conform_on_random_instances(
        seed in any::<u64>(), n_tasks in 4usize..10,
    ) {
        let (graph, platform) = small_instance(seed, n_tasks);
        let token = CancelToken::new();
        token.cancel();
        let solve_ctx = ctx().with_cancel_token(&token);
        for entry in registry().entries() {
            let outcome = entry.build(seed).solve(&graph, &platform, &solve_ctx);
            check_cancelled_outcome(entry.info.key, &outcome);
        }
    }

    /// The deadline path through the same sweep.
    #[test]
    fn expired_deadline_solvers_conform_on_random_instances(
        seed in any::<u64>(), n_tasks in 4usize..10,
    ) {
        let (graph, platform) = small_instance(seed, n_tasks);
        let solve_ctx = ctx().with_deadline(Deadline::after_millis(0));
        for entry in registry().entries() {
            let outcome = entry.build(seed).solve(&graph, &platform, &solve_ctx);
            check_cancelled_outcome(entry.info.key, &outcome);
        }
    }
}
