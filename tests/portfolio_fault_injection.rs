//! Fault injection for the portfolio racer: members that panic, report
//! infeasibility, or return broken outcomes must be contained — the panic is
//! caught and surfaced in the member's error slot, the race continues, and
//! the best healthy member still wins. A registry of stub solvers keeps the
//! faults deterministic.

use mals::prelude::*;
use mals::sched::SolverInfo;
use mals::util::{ParallelConfig, WorkerPool};

/// A member that always panics mid-solve.
struct Panicker;

impl Solver for Panicker {
    fn name(&self) -> &str {
        "Panicker"
    }

    fn solve(&self, _: &TaskGraph, _: &Platform, _: &SolveCtx) -> SolveOutcome {
        panic!("injected fault");
    }
}

/// A member that always claims infeasibility.
struct AlwaysInfeasible;

impl Solver for AlwaysInfeasible {
    fn name(&self) -> &str {
        "AlwaysInfeasible"
    }

    fn solve(&self, _: &TaskGraph, _: &Platform, _: &SolveCtx) -> SolveOutcome {
        SolveOutcome::without_schedule(OptimalityStatus::Infeasible, 0)
    }
}

/// A member that returns a memory-violating schedule: it "solves" on the
/// unbounded platform and claims the result for the bounded one. The racer
/// must exclude it via independent validation, not trust its status.
struct BoundsCheater;

impl Solver for BoundsCheater {
    fn name(&self) -> &str {
        "BoundsCheater"
    }

    fn solve(&self, graph: &TaskGraph, platform: &Platform, ctx: &SolveCtx) -> SolveOutcome {
        MemHeft::new().solve(graph, &platform.unbounded(), ctx)
    }
}

/// The test-only registry: the faulty stubs next to one healthy solver.
fn faulty_registry() -> SolverRegistry {
    let mut registry = SolverRegistry::empty();
    let stub = |key: &'static str| SolverInfo {
        key,
        summary: "fault-injection stub",
        memory_aware: true,
        exact: false,
    };
    registry.register(stub("panic"), |_| Box::new(Panicker));
    registry.register(stub("infeasible"), |_| Box::new(AlwaysInfeasible));
    registry.register(stub("cheater"), |_| Box::new(BoundsCheater));
    registry.register(stub("memheft"), |_| Box::new(MemHeft::new()));
    registry
}

fn instance() -> (TaskGraph, Platform) {
    let (graph, _) = dex();
    (graph, Platform::single_pair(6.0, 6.0))
}

#[test]
fn panicking_member_is_contained_and_surfaced() {
    let (graph, platform) = instance();
    let portfolio = Portfolio::from_registry(&faulty_registry(), &["panic", "memheft"], 0).unwrap();
    let report = portfolio.solve_race(&graph, &platform, &SolveCtx::sequential());
    // The panic is contained: we got a report, the healthy member won.
    assert_eq!(report.winner_key(), Some("memheft"));
    assert_eq!(report.outcome.status, OptimalityStatus::Heuristic);
    let schedule = report.outcome.schedule.as_ref().unwrap();
    assert!(validate(&graph, &platform, schedule).is_valid());
    // ...and surfaced in the member's error slot.
    let errors = report.errors();
    assert_eq!(errors.len(), 1);
    assert_eq!(errors[0].0, "panic");
    assert!(errors[0].1.contains("injected fault"), "{}", errors[0].1);
    let faulty = &report.members[0];
    assert_eq!(faulty.status, OptimalityStatus::LimitHit);
    assert_eq!(faulty.makespan, None);
}

#[test]
fn panics_are_contained_on_worker_pool_threads_too() {
    let (graph, platform) = instance();
    let portfolio = Portfolio::from_registry(
        &faulty_registry(),
        &["panic", "panic", "memheft", "panic"],
        0,
    );
    // Duplicate member keys are allowed in a race (unlike registry keys).
    let portfolio = portfolio.unwrap();
    let pool = WorkerPool::new(ParallelConfig::with_threads(4));
    let ctx = SolveCtx::pooled(SolveLimits::default(), &pool);
    let report = portfolio.solve_race(&graph, &platform, &ctx);
    assert_eq!(report.winner_key(), Some("memheft"));
    assert_eq!(report.errors().len(), 3);
    assert!(report.outcome.schedule.is_some());
}

#[test]
fn infeasible_reporting_member_does_not_poison_the_race() {
    let (graph, platform) = instance();
    let portfolio =
        Portfolio::from_registry(&faulty_registry(), &["infeasible", "memheft"], 0).unwrap();
    let report = portfolio.solve_race(&graph, &platform, &SolveCtx::sequential());
    assert_eq!(report.winner_key(), Some("memheft"));
    assert_eq!(report.outcome.status, OptimalityStatus::Heuristic);
    assert_eq!(report.members[0].status, OptimalityStatus::Infeasible);
    // A lone infeasibility claim is not an error, just a losing answer.
    assert!(report.errors().is_empty());
}

#[test]
fn bounds_cheating_member_is_excluded_by_independent_validation() {
    // Tight-but-feasible bounds: the cheater's unbounded schedule finishes
    // first on paper but violates the platform, so it must not be crowned.
    let (graph, _) = dex();
    let platform = Platform::single_pair(5.0, 5.0);
    let portfolio =
        Portfolio::from_registry(&faulty_registry(), &["cheater", "memheft"], 0).unwrap();
    let report = portfolio.solve_race(&graph, &platform, &SolveCtx::sequential());
    let schedule = report.outcome.schedule.as_ref().expect("memheft succeeds");
    assert!(validate(&graph, &platform, schedule).is_valid());
    let cheater = &report.members[0];
    if cheater.error.is_some() {
        // The cheat was caught: excluded from the race with a named reason.
        assert_eq!(report.winner_key(), Some("memheft"));
        assert!(cheater.error.as_deref().unwrap().contains("memory bounds"));
    } else {
        // On this instance the unbounded schedule happened to fit; then it
        // is a legitimate member and may win.
        assert!(report.winner.is_some());
    }
}

#[test]
fn all_members_faulty_yields_limit_hit_not_a_panic() {
    let (graph, platform) = instance();
    let portfolio =
        Portfolio::from_registry(&faulty_registry(), &["panic", "infeasible"], 0).unwrap();
    let report = portfolio.solve_race(&graph, &platform, &SolveCtx::sequential());
    assert_eq!(report.winner, None);
    // A contained panic proves nothing, so the aggregate cannot claim
    // `Infeasible` — it is a limit/failure outcome.
    assert_eq!(report.outcome.status, OptimalityStatus::LimitHit);
    assert!(report.outcome.schedule.is_none());
}

#[test]
fn all_members_infeasible_yields_infeasible() {
    let (graph, platform) = instance();
    let portfolio =
        Portfolio::from_registry(&faulty_registry(), &["infeasible", "infeasible"], 0).unwrap();
    let report = portfolio.solve_race(&graph, &platform, &SolveCtx::sequential());
    assert_eq!(report.winner, None);
    assert_eq!(report.outcome.status, OptimalityStatus::Infeasible);
}
