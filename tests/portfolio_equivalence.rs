//! Portfolio equivalence suite: with no deadline, racing a portfolio is
//! *observationally identical* to running every member individually and
//! keeping the best — same winner, same makespan, bit-identical schedule —
//! for any worker-thread count. With a deadline, the race is anytime: on the
//! 10⁴-task fixture a 500 ms budget still returns a valid schedule well
//! under a second of wall time.

use mals::prelude::*;
use mals::util::Deadline;
use std::time::Instant;

/// Runs every default member individually (same seed, sequential context —
/// exactly what each racing member sees) and returns the best schedule by
/// the portfolio's own tie-break: smallest `(makespan, member index)`.
fn best_of_members_individually(
    graph: &TaskGraph,
    platform: &Platform,
) -> Option<(usize, Schedule)> {
    let registry = solver_registry();
    let mut best: Option<(usize, Schedule)> = None;
    for (i, key) in DEFAULT_MEMBERS.iter().enumerate() {
        let outcome =
            registry
                .build_seeded(key, 0)
                .unwrap()
                .solve(graph, platform, &SolveCtx::sequential());
        if let Some(schedule) = outcome.schedule {
            if validate(graph, platform, &schedule).is_valid()
                && best
                    .as_ref()
                    .is_none_or(|(_, b)| schedule.makespan() < b.makespan())
            {
                best = Some((i, schedule));
            }
        }
    }
    best
}

fn fixture(n_tasks: usize, tightness: f64) -> (TaskGraph, Platform) {
    let graph = mals_bench::large_rand_dag(n_tasks, 42);
    let open = Platform::single_pair(0.0, 0.0);
    let reference = mals::experiments::heft_reference(&graph, &open);
    let bound = reference.heft_peaks.max() * tightness;
    (graph, open.with_memory_bounds(bound, bound))
}

/// The tentpole equivalence: no deadline ⇒ the portfolio is bit-identical
/// to best-of-members, across 1 / 2 / 4 worker threads.
#[test]
fn no_deadline_portfolio_equals_best_of_members_across_thread_counts() {
    let (graph, platform) = fixture(300, 0.9);
    let (expected_winner, expected_schedule) =
        best_of_members_individually(&graph, &platform).expect("fixture is feasible");
    for threads in [1, 2, 4] {
        let engine = Engine::new(
            solver_registry(),
            EngineConfig::default().with_threads(threads),
        );
        let report = engine
            .solve_portfolio::<&str>(&[], 0, &graph, &platform, None)
            .unwrap();
        assert_eq!(
            report.winner,
            Some(expected_winner),
            "{threads} threads picked a different winner"
        );
        assert_eq!(
            report.outcome.schedule.as_ref(),
            Some(&expected_schedule),
            "{threads} threads diverged from the individual best"
        );
        assert_eq!(report.outcome.status, OptimalityStatus::Heuristic);
        // The aggregate makespan is ≤ every member's own result.
        let best = report.outcome.makespan().unwrap();
        for member in &report.members {
            if let Some(makespan) = member.makespan {
                assert!(
                    best <= makespan + 1e-9,
                    "{}: member makespan {makespan} beats the winner {best}",
                    member.key
                );
            }
        }
    }
}

/// Tightening the memory bound changes which member wins on some instances;
/// the equivalence must hold regardless of who that is.
#[test]
fn equivalence_holds_across_memory_pressure_levels() {
    for tightness in [0.7, 0.85, 1.0] {
        let (graph, platform) = fixture(200, tightness);
        let engine = Engine::new(solver_registry(), EngineConfig::default().with_threads(2));
        let report = engine
            .solve_portfolio::<&str>(&[], 0, &graph, &platform, None)
            .unwrap();
        match best_of_members_individually(&graph, &platform) {
            Some((expected_winner, expected_schedule)) => {
                assert_eq!(
                    report.winner,
                    Some(expected_winner),
                    "tightness {tightness}"
                );
                assert_eq!(
                    report.outcome.schedule.as_ref(),
                    Some(&expected_schedule),
                    "tightness {tightness}"
                );
            }
            None => assert_eq!(report.winner, None, "tightness {tightness}"),
        }
    }
}

/// The anytime acceptance bar: a 2-member portfolio over the 10⁴-task
/// fixture with a 500 ms deadline returns a *valid* schedule in < 1 s of
/// wall time — the fast member finishes inside the budget, the slow one is
/// cancelled at its next commit instead of running to completion.
#[test]
fn deadline_bounded_race_returns_valid_schedule_on_large_fixture() {
    let (graph, platform) = fixture(10_000, 1.0);
    let engine = Engine::new(solver_registry(), EngineConfig::sequential());
    let started = Instant::now();
    let report = engine
        .solve_portfolio(
            &["memheft", "memminmin"],
            0,
            &graph,
            &platform,
            Some(Deadline::after_millis(500)),
        )
        .unwrap();
    let elapsed = started.elapsed();
    assert!(
        elapsed.as_millis() < 1000,
        "race overran the deadline: {elapsed:?}"
    );
    let schedule = report
        .outcome
        .schedule
        .as_ref()
        .expect("the fast member finishes inside the 500 ms budget");
    let verdict = validate(&graph, &platform, schedule);
    assert!(verdict.is_valid(), "{:?}", verdict.errors);
    assert!(report.outcome.status.carries_schedule());
    assert!(report.wall_time_ms < 1000);
}

/// Without a pool the race degrades to a deadline-bounded sequential sweep,
/// and the no-deadline result is still identical to the pooled one.
#[test]
fn sequential_and_pooled_races_agree() {
    let (graph, platform) = fixture(150, 0.9);
    let sequential = Engine::new(solver_registry(), EngineConfig::sequential());
    let pooled = Engine::new(solver_registry(), EngineConfig::default().with_threads(4));
    let a = sequential
        .solve_portfolio::<&str>(&[], 0, &graph, &platform, None)
        .unwrap();
    let b = pooled
        .solve_portfolio::<&str>(&[], 0, &graph, &platform, None)
        .unwrap();
    assert_eq!(a.winner, b.winner);
    assert_eq!(a.outcome.schedule, b.outcome.schedule);
    assert_eq!(a.members.len(), b.members.len());
    for (x, y) in a.members.iter().zip(&b.members) {
        assert_eq!(x.key, y.key);
        assert_eq!(x.makespan, y.makespan);
        assert_eq!(x.status, y.status);
    }
}
