//! Property-based tests on the core invariants of the workspace, driven by
//! proptest over randomly generated task graphs, platforms and memory bounds.

use mals::gen::{DaggenParams, WeightRanges};
use mals::prelude::*;
use mals::sim::memory_peaks;
use mals::util::Staircase;
use proptest::prelude::*;

/// Strategy: a seeded random DAG of 4..=18 tasks with SmallRandSet-style
/// weights (the seed is the shrinkable quantity, keeping failures replayable).
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 4usize..=18, 2usize..=6).prop_map(|(seed, size, jumps)| {
        let mut rng = Pcg64::new(seed);
        mals::gen::daggen::generate(
            &DaggenParams {
                size,
                width: 0.4,
                density: 0.5,
                jumps,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        )
    })
}

/// Strategy: a platform with 1..=3 processors of each colour.
fn arb_platform() -> impl Strategy<Value = Platform> {
    (1usize..=3, 1usize..=3).prop_map(|(p1, p2)| Platform::new(p1, p2, 0.0, 0.0).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every schedule produced by a memory-aware heuristic is valid: flow,
    /// resource and *both* memory constraints hold, for any memory bound.
    #[test]
    fn heuristic_schedules_are_always_valid(
        graph in arb_graph(),
        platform in arb_platform(),
        fraction in 0.2f64..1.5,
    ) {
        let unbounded = platform.unbounded();
        let reference = memory_peaks(&graph, &unbounded, &Heft::new().schedule(&graph, &unbounded).unwrap());
        let bound = (reference.max() * fraction).ceil();
        let bounded = platform.with_memory_bounds(bound, bound);
        for scheduler in [&MemHeft::new() as &dyn Scheduler, &MemMinMin::new()] {
            match scheduler.schedule(&graph, &bounded) {
                Ok(schedule) => {
                    prop_assert!(schedule.is_complete(&graph));
                    let report = validate(&graph, &bounded, &schedule);
                    prop_assert!(report.is_valid(), "{}: {:?}", scheduler.name(), report.errors);
                    prop_assert!(report.peaks.blue <= bound + 1e-6);
                    prop_assert!(report.peaks.red <= bound + 1e-6);
                }
                Err(ScheduleError::Infeasible { .. }) => {}
                Err(e) => prop_assert!(false, "unexpected error: {e}"),
            }
        }
    }

    /// With memory bounds no tighter than the total file volume, the memory
    /// terms of the EST can never bind and MemHEFT reproduces HEFT exactly
    /// (the paper's Section 6.2.1 observation).
    #[test]
    fn memheft_equals_heft_with_ample_memory(graph in arb_graph(), platform in arb_platform()) {
        let unbounded = platform.unbounded();
        let heft = Heft::new().schedule(&graph, &unbounded).unwrap();
        let ample = graph.total_file_size();
        let bounded = platform.with_memory_bounds(ample, ample);
        let memheft = MemHeft::new().schedule(&graph, &bounded).unwrap();
        prop_assert_eq!(&heft, &memheft);
        // And HEFT's own footprint indeed fits in that budget.
        let peaks = memory_peaks(&graph, &unbounded, &heft);
        prop_assert!(peaks.max() <= ample + 1e-9);
    }

    /// The memory-oblivious baselines always succeed and never report a
    /// makespan below the critical-path lower bound.
    #[test]
    fn baselines_always_succeed_and_respect_lower_bound(
        graph in arb_graph(),
        platform in arb_platform(),
    ) {
        let lb = mals::exact::makespan_lower_bound(&graph, &platform);
        for scheduler in [&Heft::new() as &dyn Scheduler, &MinMin::new()] {
            let schedule = scheduler.schedule(&graph, &platform).unwrap();
            prop_assert!(schedule.is_complete(&graph));
            prop_assert!(schedule.makespan() >= lb - 1e-9);
        }
    }

    /// The branch-and-bound optimum never exceeds any heuristic makespan and
    /// never undercuts the combinatorial lower bound.
    #[test]
    fn exact_between_lower_bound_and_heuristics(seed in any::<u64>()) {
        let mut rng = Pcg64::new(seed);
        let graph = mals::gen::daggen::generate(
            &DaggenParams { size: 7, width: 0.4, density: 0.5, jumps: 3 },
            &WeightRanges::small_rand(),
            &mut rng,
        );
        let platform = Platform::single_pair(150.0, 150.0);
        let exact = BranchAndBound::with_node_limit(200_000).solve(&graph, &platform);
        let opt = exact.makespan.expect("ample memory");
        let lb = mals::exact::makespan_lower_bound(&graph, &platform);
        prop_assert!(opt >= lb - 1e-9);
        for scheduler in [&MemHeft::new() as &dyn Scheduler, &MemMinMin::new()] {
            let heuristic = scheduler.schedule(&graph, &platform).unwrap().makespan();
            prop_assert!(opt <= heuristic + 1e-9);
        }
    }

    /// Upward ranks strictly decrease along every edge of a positive-cost
    /// graph (the property that makes the MemHEFT priority list a valid
    /// topological order).
    #[test]
    fn upward_ranks_decrease_along_edges(graph in arb_graph()) {
        let ranks = mals::dag::upward_ranks(&graph);
        for e in graph.edge_ids() {
            let edge = graph.edge(e);
            prop_assert!(ranks[edge.src.index()] > ranks[edge.dst.index()]);
        }
    }

    /// Staircase algebra: reserving and then releasing the same amount leaves
    /// the profile identical, and `earliest_sustained_ge` always returns a
    /// time at which the requirement indeed holds.
    #[test]
    fn staircase_reserve_release_roundtrip(
        capacity in 1.0f64..100.0,
        updates in proptest::collection::vec((0.0f64..50.0, 0.0f64..50.0, 0.1f64..20.0), 0..12),
        threshold in 0.0f64..60.0,
    ) {
        let mut profile = Staircase::constant(capacity);
        let baseline = profile.clone();
        for (start, len, amount) in &updates {
            profile.add_range(*start, start + len, -amount);
        }
        if let Some(t) = profile.earliest_sustained_ge(0.0, threshold) {
            prop_assert!(profile.min_from(t) >= threshold - 1e-9);
        } else {
            prop_assert!(profile.final_value() < threshold);
        }
        // Undo everything: back to the constant function.
        for (start, len, amount) in &updates {
            profile.add_range(*start, start + len, *amount);
        }
        for x in [0.0, 1.0, 7.5, 33.3, 120.0] {
            prop_assert!((profile.value_at(x) - baseline.value_at(x)).abs() < 1e-9);
        }
    }

    /// The DAGGEN generator always produces valid DAGs of the requested size
    /// whose non-source tasks all have parents.
    #[test]
    fn generator_produces_well_formed_dags(seed in any::<u64>(), size in 1usize..60) {
        let mut rng = Pcg64::new(seed);
        let graph = mals::gen::daggen::generate(
            &DaggenParams { size, width: 0.3, density: 0.5, jumps: 4 },
            &WeightRanges::large_rand(),
            &mut rng,
        );
        prop_assert_eq!(graph.n_tasks(), size);
        prop_assert!(graph.validate().is_ok());
        let levels = mals::dag::algo::levels(&graph);
        for t in graph.task_ids() {
            if levels[t.index()] > 0 {
                prop_assert!(graph.in_degree(t) >= 1);
            }
        }
    }
}
