//! Golden tests anchored to the worked example of the paper (Figures 2–4):
//! the toy DAG `D_ex`, its schedules `s1` and `s2`, and the memory/makespan
//! trade-off they illustrate.

use mals::prelude::*;
use mals::sim::{CommPlacement, TaskPlacement};

/// Rebuilds the schedule s1 of Figure 3 (makespan 6, red peak 5).
fn schedule_s1(graph: &mals::dag::TaskGraph, t: [TaskId; 4]) -> Schedule {
    let [t1, t2, t3, t4] = t;
    let mut s = Schedule::for_graph(graph);
    s.place_task(TaskPlacement {
        task: t1,
        proc: 1,
        start: 0.0,
        finish: 1.0,
    });
    s.place_task(TaskPlacement {
        task: t3,
        proc: 1,
        start: 1.0,
        finish: 4.0,
    });
    s.place_task(TaskPlacement {
        task: t2,
        proc: 0,
        start: 2.0,
        finish: 4.0,
    });
    s.place_task(TaskPlacement {
        task: t4,
        proc: 1,
        start: 5.0,
        finish: 6.0,
    });
    let e12 = graph.edge_between(t1, t2).unwrap();
    let e24 = graph.edge_between(t2, t4).unwrap();
    s.place_comm(CommPlacement {
        edge: e12,
        start: 1.0,
        finish: 2.0,
    });
    s.place_comm(CommPlacement {
        edge: e24,
        start: 4.0,
        finish: 5.0,
    });
    s
}

#[test]
fn s1_is_valid_with_memory_5_and_matches_the_paper_numbers() {
    let (graph, tasks) = dex();
    let platform = Platform::single_pair(5.0, 5.0);
    let s1 = schedule_s1(&graph, tasks);
    let report = validate(&graph, &platform, &s1);
    assert!(report.is_valid(), "{:?}", report.errors);
    assert_eq!(report.makespan, 6.0);
    assert_eq!(report.peaks.blue, 2.0);
    assert_eq!(report.peaks.red, 5.0);
}

#[test]
fn s1_violates_memory_4() {
    let (graph, tasks) = dex();
    let platform = Platform::single_pair(4.0, 4.0);
    let s1 = schedule_s1(&graph, tasks);
    assert!(!validate(&graph, &platform, &s1).is_valid());
}

#[test]
fn optimal_makespan_is_6_with_memory_5() {
    let (graph, _) = dex();
    let platform = Platform::single_pair(5.0, 5.0);
    let result = BranchAndBound::default().solve(&graph, &platform);
    assert!(result.proven_optimal);
    assert_eq!(result.makespan, Some(6.0));
}

#[test]
fn memory_4_forces_a_slower_schedule_like_s2() {
    // The paper's s2 trades a makespan of 7 for peaks of at most 4.
    let (graph, _) = dex();
    let platform = Platform::single_pair(4.0, 4.0);
    let result = BranchAndBound::default().solve(&graph, &platform);
    assert!(result.proven_optimal);
    let makespan = result
        .makespan
        .expect("D_ex is schedulable with 4 units per side");
    assert!(makespan > 6.0 && makespan <= 7.0 + 1e-9, "got {makespan}");
    let schedule = result.schedule.unwrap();
    let report = validate(&graph, &platform, &schedule);
    assert!(report.is_valid());
    assert!(report.peaks.blue <= 4.0 && report.peaks.red <= 4.0);
}

#[test]
fn heuristics_respect_both_memory_bounds_on_dex() {
    let (graph, _) = dex();
    for (blue, red) in [(5.0, 5.0), (4.0, 6.0), (6.0, 4.0), (10.0, 3.0)] {
        let platform = Platform::single_pair(blue, red);
        for scheduler in [&MemHeft::new() as &dyn Scheduler, &MemMinMin::new()] {
            if let Ok(schedule) = scheduler.schedule(&graph, &platform) {
                let report = validate(&graph, &platform, &schedule);
                assert!(
                    report.is_valid(),
                    "{} with bounds ({blue},{red}): {:?}",
                    scheduler.name(),
                    report.errors
                );
            }
        }
    }
}

#[test]
fn upward_ranks_of_dex_follow_the_heft_formula() {
    let (graph, [t1, t2, t3, t4]) = dex();
    let ranks = mals::dag::upward_ranks(&graph);
    assert_eq!(ranks[t4.index()], 1.0);
    assert_eq!(ranks[t2.index()], 3.5);
    assert_eq!(ranks[t3.index()], 6.0);
    assert_eq!(ranks[t1.index()], 8.5);
}

#[test]
fn mem_req_of_dex_tasks() {
    let (graph, [t1, t2, t3, t4]) = dex();
    assert_eq!(graph.mem_req(t1), 3.0);
    assert_eq!(graph.mem_req(t2), 2.0);
    assert_eq!(graph.mem_req(t3), 4.0);
    assert_eq!(graph.mem_req(t4), 3.0);
}
