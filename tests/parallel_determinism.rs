//! Determinism of the within-schedule parallel engine: for any random DAG,
//! platform and memory bound, the schedules produced with the ready-list
//! evaluation spread over 1 / 2 / 4 / 8 threads are **bit-identical** to the
//! sequential engine, and every emitted schedule passes the independent
//! validator. This is the contract that lets the experiment campaigns use
//! `--threads` freely without perturbing any figure of the paper.

use mals::gen::{DaggenParams, WeightRanges};
use mals::prelude::*;
use mals::sched::MemHeftVariant;
use mals::sim::memory_peaks;
use mals::util::ParallelConfig;
use proptest::prelude::*;

const THREAD_LADDER: [usize; 4] = [1, 2, 4, 8];

/// Strategy: a seeded random DAG of 8..=40 tasks with SmallRandSet-style
/// weights (the seed is the replayable quantity).
fn arb_graph() -> impl Strategy<Value = TaskGraph> {
    (any::<u64>(), 8usize..=40, 2usize..=6).prop_map(|(seed, size, jumps)| {
        let mut rng = Pcg64::new(seed);
        mals::gen::daggen::generate(
            &DaggenParams {
                size,
                width: 0.4,
                density: 0.5,
                jumps,
            },
            &WeightRanges::small_rand(),
            &mut rng,
        )
    })
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    (1usize..=3, 1usize..=3).prop_map(|(p1, p2)| Platform::new(p1, p2, 0.0, 0.0).unwrap())
}

/// Runs one scheduler builder across the thread ladder and asserts all
/// outcomes agree bit-for-bit with the 1-thread run (both the schedules and
/// the failures), validating every schedule that comes out.
fn assert_thread_invariant<S: Scheduler>(
    build: impl Fn(ParallelConfig) -> S,
    graph: &TaskGraph,
    platform: &Platform,
) {
    let mut reference: Option<Result<Schedule, String>> = None;
    for threads in THREAD_LADDER {
        let scheduler = build(ParallelConfig::with_threads(threads));
        let outcome = scheduler
            .schedule(graph, platform)
            .map_err(|e| e.to_string());
        if let Ok(schedule) = &outcome {
            let report = validate(graph, platform, schedule);
            assert!(
                report.is_valid(),
                "{} with {threads} threads emitted an invalid schedule: {:?}",
                scheduler.name(),
                report.errors
            );
        }
        match &reference {
            None => reference = Some(outcome),
            Some(expected) => assert!(
                *expected == outcome,
                "{} diverged at {threads} threads",
                scheduler.name()
            ),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// MemHEFT and MemMinMin are thread-count invariant on random DAGs and
    /// memory bounds from hopeless to ample.
    #[test]
    fn memory_aware_heuristics_are_thread_count_invariant(
        graph in arb_graph(),
        platform in arb_platform(),
        fraction in 0.2f64..1.5,
    ) {
        let unbounded = platform.unbounded();
        let reference = memory_peaks(
            &graph,
            &unbounded,
            &Heft::new().schedule(&graph, &unbounded).unwrap(),
        );
        let bound = (reference.max() * fraction).ceil();
        let bounded = platform.with_memory_bounds(bound, bound);
        assert_thread_invariant(MemHeft::with_parallelism, &graph, &bounded);
        assert_thread_invariant(MemMinMin::with_parallelism, &graph, &bounded);
    }

    /// The memory-oblivious baselines go through the same engine and must be
    /// equally invariant. They ignore memory bounds by design, so they are
    /// exercised (and validated) on the unbounded platform.
    #[test]
    fn oblivious_baselines_are_thread_count_invariant(
        graph in arb_graph(),
        platform in arb_platform(),
    ) {
        let unbounded = platform.unbounded();
        assert_thread_invariant(Heft::with_parallelism, &graph, &unbounded);
        assert_thread_invariant(MinMin::with_parallelism, &graph, &unbounded);
    }

    /// The red-preference ablation variant exercises the engine's other
    /// tie-breaking branch; it must be thread-count invariant too.
    #[test]
    fn red_preference_variant_is_thread_count_invariant(
        graph in arb_graph(),
        platform in arb_platform(),
    ) {
        assert_thread_invariant(
            |parallel| MemHeftVariant {
                memory_preference: mals::sched::MemoryPreference::Red,
                parallel,
                ..Default::default()
            },
            &graph,
            &platform,
        );
    }
}

/// The paper-scale fixture: the exact 1000-task LargeRandSet instance the
/// `scaling_within_schedule` bench and the `bench_json` CI runner measure
/// (same seed, via `mals_bench`), scheduled at a binding 70% memory bound
/// across the full thread ladder. Debug-build friendly: only MemMinMin,
/// whose every step evaluates the whole ready list.
#[test]
fn large_rand_1000_tasks_is_thread_count_invariant() {
    let graph = mals_bench::large_rand_dag(
        mals_bench::WITHIN_SCHEDULE_TASKS,
        mals_bench::WITHIN_SCHEDULE_SEED,
    );
    let platform = Platform::single_pair(0.0, 0.0);
    let unbounded = platform.unbounded();
    let peaks = memory_peaks(
        &graph,
        &unbounded,
        &Heft::new().schedule(&graph, &unbounded).unwrap(),
    );
    let bound = 0.7 * peaks.max();
    let bounded = platform.with_memory_bounds(bound, bound);

    let reference = MemMinMin::new().schedule(&graph, &bounded).unwrap();
    let report = validate(&graph, &bounded, &reference);
    assert!(report.is_valid(), "sequential: {:?}", report.errors);
    for threads in THREAD_LADDER {
        let parallel = MemMinMin::with_parallelism(ParallelConfig::with_threads(threads))
            .schedule(&graph, &bounded)
            .unwrap();
        assert_eq!(reference, parallel, "{threads} threads diverged at n=1000");
    }
}
