//! # MALS — Memory-Aware List Scheduling for hybrid platforms
//!
//! A from-scratch Rust implementation of *Memory-aware list scheduling for
//! hybrid platforms* (Herrmann, Marchal, Robert — INRIA RR-8461 / IPDPS
//! workshops 2014): scheduling task graphs on a dual-memory platform (a
//! multicore CPU with its RAM plus an accelerator with its device memory)
//! while keeping the peak usage of **both** memories under given bounds.
//!
//! This crate is a facade: it re-exports the workspace crates so downstream
//! users can depend on a single package.
//!
//! | Module | Contents |
//! |---|---|
//! | [`dag`] | task-graph substrate (graph, ranks, critical paths, DOT, JSON) |
//! | [`platform`] | dual-memory platform model and availability tracking |
//! | [`sim`] | schedule representation, validation, memory replay, Gantt |
//! | [`gen`] | DAGGEN-style random DAGs, tiled LU / Cholesky generators |
//! | [`sched`] | HEFT, MinMin, **MemHEFT**, **MemMinMin**, the unified [`sched::Solver`] trait, the solver registry and the [`sched::Engine`] |
//! | [`exact`] | the paper's ILP (LP export), a branch-and-bound optimum, the in-tree MILP solver and [`exact::solver_registry`] |
//! | [`experiments`] | campaign harness reproducing every table and figure, plus the JSON service surface (`SolveRequest` → `SolveReport`) |
//! | [`util`] | deterministic RNG, statistics, staircase functions, thread pool, JSON |
//!
//! # Quickstart
//!
//! Solvers — heuristics and exact backends alike — are selected **by name**
//! through an [`Engine`](sched::Engine) session that owns the worker pool
//! and the solve limits:
//!
//! ```
//! use mals::prelude::*;
//!
//! // Build a small task graph: every task has a CPU time and an
//! // accelerator time; every edge carries a data file.
//! let mut graph = TaskGraph::new();
//! let a = graph.add_task("a", 4.0, 2.0);
//! let b = graph.add_task("b", 3.0, 1.0);
//! let c = graph.add_task("c", 2.0, 2.0);
//! graph.add_edge(a, b, 2.0, 1.0).unwrap();
//! graph.add_edge(a, c, 1.0, 1.0).unwrap();
//!
//! // One CPU and one accelerator, 6 units of memory on each side.
//! let platform = Platform::single_pair(6.0, 6.0);
//!
//! // An engine over every registered solver; reuse it across solves.
//! let engine = mals::exact::engine(EngineConfig::default());
//! for solver in ["memheft", "memminmin", "bb"] {
//!     let outcome = engine.solve(solver, &graph, &platform).unwrap();
//!     let schedule = outcome.schedule.as_ref().unwrap();
//!     let report = validate(&graph, &platform, schedule);
//!     assert!(report.is_valid());
//!     assert!(report.peaks.blue <= 6.0 && report.peaks.red <= 6.0);
//! }
//!
//! // Or go through the serde-able service surface — a `Service` session
//! // owns the engine; the `schedule` binary and the `malsd` daemon wire
//! // the same session to a file / stdin / TCP socket:
//! let request = SolveRequest::new(graph, platform, "milp");
//! let report = Service::for_request(&request).try_handle(&request).unwrap();
//! assert!(report.status == OptimalityStatus::Optimal);
//! assert_eq!(report.valid, Some(true));
//! let roundtrip = SolveReport::parse(&report.to_json().to_pretty()).unwrap();
//! assert_eq!(roundtrip, report);
//! ```

#![warn(missing_docs)]

pub use mals_dag as dag;
pub use mals_exact as exact;
pub use mals_experiments as experiments;
pub use mals_gen as gen;
pub use mals_platform as platform;
pub use mals_sched as sched;
pub use mals_sim as sim;
pub use mals_util as util;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use mals_dag::{EdgeId, TaskGraph, TaskId};
    pub use mals_exact::{build_ilp, solver_registry, BranchAndBound};
    pub use mals_experiments::{
        CodedError, ErrorCode, MemberOutcome, Service, ServiceError, SolveReport, SolveRequest,
        PROTOCOL_VERSION,
    };
    pub use mals_gen::{cholesky_dag, dex, lu_dag, DaggenParams, KernelCosts, WeightRanges};
    pub use mals_platform::{Memory, Platform};
    pub use mals_sched::{
        Engine, EngineConfig, Heft, MemHeft, MemMinMin, MemberReport, MinMin, OptimalityStatus,
        Portfolio, PortfolioReport, ScheduleError, Scheduler, SolveCtx, SolveLimits, SolveOutcome,
        Solver, SolverRegistry, DEFAULT_MEMBERS,
    };
    pub use mals_sim::{memory_peaks, validate, Schedule};
    pub use mals_util::{Json, Pcg64};
}
